package simt

// The warp-vectorized interpreter. Resume walks the SIMT reconvergence
// stack exactly as the original per-lane interpreter did — the hook event
// sequences ((block, mask) enters and (block, memIdx, space, store,
// addrs) accesses) are invariant under this rewrite — but each decoded
// instruction executes as ONE switch dispatch followed by a lane loop,
// instead of one dispatch per active lane:
//
//   - the active-mask test is hoisted per block: any contiguous run of
//     active lanes (the common shape — full warps, and guard-trimmed
//     warps like "if (tid < n)") takes a dense lo..hi loop with no
//     per-lane mask check; only genuinely fragmented masks iterate set
//     bits with m &= m-1 / TrailingZeros32;
//   - register vectors are *[WarpWidth]int64 windows into the SoA file,
//     so lane indexing is one add against a constant-size array;
//   - immediate-form classes (decode.go) keep one operand in the uop,
//     halving the vector traffic of const-fed ALU ops;
//   - loads and stores index DirectMemory backing slices in range and
//     re-issue through the Memory interface out of range, keeping the
//     interface path's diagnostics byte-compatible; untraced warps
//     (hooks == nil) skip the address-buffer bookkeeping entirely;
//   - instruction counting adds icount × popcount(mask) per decoded
//     instruction, which accounts for elided instructions at exactly the
//     point the unoptimized program would have counted them.

import (
	"fmt"
	"math/bits"

	"owl/internal/isa"
)

// Resume executes until the warp retires (returns false) or reaches a
// barrier (returns true). A barrier inside divergent control flow is an
// error, as on real hardware.
func (r *WarpRun) Resume() (atBarrier bool, err error) {
	if r.pendingErr != nil {
		return false, r.pendingErr
	}
	if r.done {
		return false, nil
	}
	e := r.exec

	for len(r.stack) > 0 {
		top := &r.stack[len(r.stack)-1]
		if top.mask == 0 || top.pc == top.rpc || top.pc < 0 {
			r.stack = r.stack[:len(r.stack)-1]
			continue
		}
		if r.st.BlocksExecuted >= e.maxBlocks {
			return false, fmt.Errorf("simt: kernel %q warp %d exceeded %d blocks (possible infinite loop)",
				e.kernel.Name, r.wp.WarpID, e.maxBlocks)
		}
		blockID := top.pc
		mask := top.mask
		bp := &e.progs[blockID]

		start := 0
		if r.resume >= 0 {
			// Continuing past a barrier: the block was already entered.
			start = r.resume
			r.resume = -1
		} else {
			r.st.BlocksExecuted++
			if r.hooks != nil {
				r.hooks.OnBlockEnter(blockID, mask)
			}
		}

		var taken uint32
		bar, err := r.execBlock(bp, blockID, mask, start, &taken)
		if err != nil {
			return false, err
		}
		if bar {
			return true, nil
		}
		if bp.tailCount != 0 {
			// Elided instructions after the last retained op: counted when
			// the block completes, exactly where the original code counted
			// them (never on a barrier suspension or an earlier error).
			r.st.Instructions += int64(bp.tailCount) * int64(bits.OnesCount32(mask))
		}

		switch bp.term.Kind {
		case isa.TermJump:
			top.pc = bp.term.True
		case isa.TermRet:
			// Retire these lanes from every entry below.
			done := top.mask
			r.stack = r.stack[:len(r.stack)-1]
			for i := range r.stack {
				r.stack[i].mask &^= done
			}
		case isa.TermBranch:
			if !(bp.fused && start < len(bp.ops)) {
				// Unfused: one pass over the condition register.
				cv := r.vec(bp.condOff)
				taken = 0
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if cv[l] != 0 {
						taken |= 1 << uint(l)
					}
				}
			}
			fall := mask &^ taken
			switch {
			case fall == 0:
				top.pc = bp.term.True
			case taken == 0:
				top.pc = bp.term.False
			default:
				rpc := bp.ipdom
				// Convert TOS into the reconvergence entry, then push the
				// two sides; the taken side executes first.
				top.pc = rpc
				r.stack = append(r.stack,
					simtEntry{pc: bp.term.False, rpc: rpc, mask: fall},
					simtEntry{pc: bp.term.True, rpc: rpc, mask: taken},
				)
			}
		}
	}
	r.done = true
	return false, nil
}

// execBlock runs the decoded instructions of one block from start under
// mask. taken receives the taken-lane mask of a fused trailing compare.
func (r *WarpRun) execBlock(bp *blockProg, blockID int, mask uint32, start int, taken *uint32) (atBarrier bool, err error) {
	nAct := int64(bits.OnesCount32(mask))
	// Any contiguous run of active lanes — not just the full warp — takes
	// the dense loops.
	lo := bits.TrailingZeros32(mask)
	span := mask >> uint(lo&31)
	dense := span&(span+1) == 0
	hi := lo + int(nAct)
	ops := bp.ops
	// Counts accumulate locally and flush once on every exit path; the
	// running total still includes the current op before it executes
	// (count-before-execute), since cnt is bumped at the top of the loop.
	var cnt int64
	defer func() { r.st.Instructions += cnt * nAct }()
	for i := start; i < len(ops); i++ {
		u := &ops[i]
		cnt += int64(u.icount)
		switch u.class {
		case uNop:
		case uBarrier:
			if len(r.stack) != 1 {
				return false, fmt.Errorf("simt: kernel %q B%d: barrier inside divergent control flow",
					r.exec.kernel.Name, blockID)
			}
			r.resume = i + 1
			return true, nil

		case uConst:
			d, v := r.vec(u.dst), u.imm
			if dense {
				dd := d[lo:hi]
				for i := range dd {
					dd[i] = v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					d[bits.TrailingZeros32(m)] = v
				}
			}
		case uMov:
			d, a := r.vec(u.dst), r.vec(u.a)
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l]
				}
			}
		case uNot:
			d, a := r.vec(u.dst), r.vec(u.a)
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = b2i(aa[i] == 0)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = b2i(a[l] == 0)
				}
			}
		case uSelect:
			d, a, b, c := r.vec(u.dst), r.vec(u.a), r.vec(u.b), r.vec(u.c)
			if dense {
				dd, aa, bb, cc := d[lo:hi], a[lo:hi], b[lo:hi], c[lo:hi]
				for i := range dd {
					if aa[i] != 0 {
						dd[i] = bb[i]
					} else {
						dd[i] = cc[i]
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] != 0 {
						d[l] = b[l]
					} else {
						d[l] = c[l]
					}
				}
			}

		case uSpecLane:
			d, v := r.vec(u.dst), &r.laneVecs[u.lvec]
			if dense {
				dd, vv := d[lo:hi], v[lo:hi]
				for i := range dd {
					dd[i] = vv[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = v[l]
				}
			}
		case uSpecUni:
			if serr := r.uniErrs[u.a]; serr != nil {
				return false, r.instrErr(blockID, u, bits.TrailingZeros32(mask), serr)
			}
			d, v := r.vec(u.dst), r.uniVals[u.a]
			if dense {
				dd := d[lo:hi]
				for i := range dd {
					dd[i] = v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					d[bits.TrailingZeros32(m)] = v
				}
			}

		case uShfl:
			// Cross-lane read: every lane sees the pre-instruction value
			// of the source register, via the per-run scratch snapshot.
			nl := r.nl
			a := r.vec(u.a)
			copy(r.shfl[:nl], a[:nl])
			d, b := r.vec(u.dst), r.vec(u.b)
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				d[l] = r.shfl[uint64(b[l])%uint64(nl)]
			}

		case uLoad, uExtLoad:
			// Untraced dense fast path: loads are pure, so on any
			// out-of-range lane the whole instruction redoes through the
			// full path (interface re-issue, error attribution) unchanged.
			if r.hooks == nil && r.direct && dense {
				var backing []int64
				switch u.space {
				case isa.SpaceGlobal:
					backing = r.dGlobal
				case isa.SpaceConstant:
					backing = r.dConst
				case isa.SpaceShared:
					backing = r.dShared
				}
				if backing != nil {
					d, a := r.vec(u.dst), r.vec(u.a)
					sh, mv := uint64(0), int64(-1)
					if u.class == uExtLoad {
						sh, mv = uint64(u.b), u.imm2
					}
					imm, nb := u.imm, uint64(len(backing))
					dd, aa := d[lo:hi], a[lo:hi]
					if mv >= 0 && imm >= 0 && uint64(mv+imm) < nb {
						// The extract mask bounds the address statically:
						// ad ∈ [imm, mv+imm] is in range for every lane
						// (table lookups hit this — the address is a masked
						// byte). Reslicing to the table and indexing with
						// idx&msk ≤ msk = len(tbl)-1 lets the compiler drop
						// the per-lane bounds check.
						tbl := backing[imm : imm+mv+1]
						msk := uint64(len(tbl) - 1)
						for i := range dd {
							dd[i] = tbl[uint64(aa[i])>>sh&msk]
						}
						break
					}
					ok := true
					for i := range dd {
						ad := int64(uint64(aa[i])>>sh)&mv + imm
						if uint64(ad) >= nb {
							ok = false
							break
						}
						dd[i] = backing[ad]
					}
					if ok {
						break
					}
				}
			}
			if err := r.memLoad(u, blockID, mask, dense, lo, hi); err != nil {
				return false, err
			}
		case uStore:
			// Same shape for stores: a redo re-writes identical values to
			// identical addresses, so partial progress before an
			// out-of-range lane is invisible.
			if r.hooks == nil && r.direct && dense {
				var backing []int64
				switch u.space {
				case isa.SpaceGlobal:
					backing = r.dGlobal
				case isa.SpaceShared:
					backing = r.dShared
				}
				if backing != nil {
					a, b := r.vec(u.a), r.vec(u.b)
					imm, nb := u.imm, uint64(len(backing))
					ok := true
					aa, bb := a[lo:hi], b[lo:hi]
					for i := range aa {
						ad := aa[i] + imm
						if uint64(ad) >= nb {
							ok = false
							break
						}
						backing[ad] = bb[i]
					}
					if ok {
						break
					}
				}
			}
			if err := r.memStore(u, blockID, mask, dense, lo, hi); err != nil {
				return false, err
			}

		case uAdd:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] + bb[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] + b[l]
				}
			}
		case uSub:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] - bb[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] - b[l]
				}
			}
		case uMul:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] * bb[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] * b[l]
				}
			}
		case uDiv:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if b[l] == 0 {
					return false, r.instrErr(blockID, u, l, fmt.Errorf("division by zero"))
				}
				d[l] = a[l] / b[l]
			}
		case uMod:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if b[l] == 0 {
					return false, r.instrErr(blockID, u, l, fmt.Errorf("modulo by zero"))
				}
				d[l] = a[l] % b[l]
			}
		case uAnd:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] & bb[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] & b[l]
				}
			}
		case uOr:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] | bb[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] | b[l]
				}
			}
		case uXor:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] ^ bb[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] ^ b[l]
				}
			}
		case uShl:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] << (uint64(bb[i]) & 63)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] << (uint64(b[l]) & 63)
				}
			}
		case uShr:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = int64(uint64(aa[i]) >> (uint64(bb[i]) & 63))
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = int64(uint64(a[l]) >> (uint64(b[l]) & 63))
				}
			}
		case uSar:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = aa[i] >> (uint64(bb[i]) & 63)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] >> (uint64(b[l]) & 63)
				}
			}
		case uMin:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = min(aa[i], bb[i])
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = min(a[l], b[l])
				}
			}
		case uMax:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					dd[i] = max(aa[i], bb[i])
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = max(a[l], b[l])
				}
			}

		case uCmpEQ:
			d, a, b := r.vec(u.dst), r.vec(u.b), r.vec(u.a)
			var tk uint32
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					if bb[i] == aa[i] {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if b[l] == a[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpNE:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					if aa[i] != bb[i] {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] != b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpLT:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					if aa[i] < bb[i] {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] < b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpLE:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					if aa[i] <= bb[i] {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] <= b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpGT:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					if aa[i] > bb[i] {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] > b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpGE:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if dense {
				dd, aa, bb := d[lo:hi], a[lo:hi], b[lo:hi]
				for i := range dd {
					if aa[i] >= bb[i] {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] >= b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk

		case uAddI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] + v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] + v
				}
			}
		case uRSubI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = v - aa[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = v - a[l]
				}
			}
		case uMulI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] * v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] * v
				}
			}
		case uDivI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if v == 0 {
				return false, r.instrErr(blockID, u, bits.TrailingZeros32(mask),
					fmt.Errorf("division by zero"))
			}
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] / v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] / v
				}
			}
		case uModI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if v == 0 {
				return false, r.instrErr(blockID, u, bits.TrailingZeros32(mask),
					fmt.Errorf("modulo by zero"))
			}
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] % v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] % v
				}
			}
		case uAndI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] & v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] & v
				}
			}
		case uOrI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] | v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] | v
				}
			}
		case uXorI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] ^ v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] ^ v
				}
			}
		case uShlI:
			d, a := r.vec(u.dst), r.vec(u.a)
			sh := uint64(u.imm) // pre-masked at decode
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] << sh
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] << sh
				}
			}
		case uShrI:
			d, a := r.vec(u.dst), r.vec(u.a)
			sh := uint64(u.imm)
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = int64(uint64(aa[i]) >> sh)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = int64(uint64(a[l]) >> sh)
				}
			}
		case uSarI:
			d, a := r.vec(u.dst), r.vec(u.a)
			sh := uint64(u.imm)
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = aa[i] >> sh
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] >> sh
				}
			}
		case uMinI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = min(aa[i], v)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = min(a[l], v)
				}
			}
		case uMaxI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = max(aa[i], v)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = max(a[l], v)
				}
			}

		case uCmpEQI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			var tk uint32
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					if aa[i] == v {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] == v {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpNEI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			var tk uint32
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					if aa[i] != v {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] != v {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpLTI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			var tk uint32
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					if aa[i] < v {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] < v {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpLEI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			var tk uint32
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					if aa[i] <= v {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] <= v {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpGTI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			var tk uint32
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					if aa[i] > v {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] > v {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpGEI:
			d, a, v := r.vec(u.dst), r.vec(u.a), u.imm
			var tk uint32
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					if aa[i] >= v {
						dd[i] = 1
						tk |= 1 << uint(lo+i)
					} else {
						dd[i] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] >= v {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk

		case uExtBI:
			d, a := r.vec(u.dst), r.vec(u.a)
			sh, mv := uint64(u.b), u.imm2
			if dense {
				dd, aa := d[lo:hi], a[lo:hi]
				for i := range dd {
					dd[i] = int64(uint64(aa[i])>>sh) & mv
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = int64(uint64(a[l])>>sh) & mv
				}
			}
		case uXor3:
			d, a, b, c := r.vec(u.dst), r.vec(u.a), r.vec(u.b), r.vec(u.c)
			if dense {
				dd, aa, bb, cc := d[lo:hi], a[lo:hi], b[lo:hi], c[lo:hi]
				for i := range dd {
					dd[i] = aa[i] ^ bb[i] ^ cc[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] ^ b[l] ^ c[l]
				}
			}
		case uAdd3:
			d, a, b, c := r.vec(u.dst), r.vec(u.a), r.vec(u.b), r.vec(u.c)
			if dense {
				dd, aa, bb, cc := d[lo:hi], a[lo:hi], b[lo:hi], c[lo:hi]
				for i := range dd {
					dd[i] = aa[i] + bb[i] + cc[i]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] + b[l] + c[l]
				}
			}

		default:
			return false, r.instrErr(blockID, u, bits.TrailingZeros32(mask),
				fmt.Errorf("unknown opcode %v", isa.Op(u.imm)))
		}
		// Microarchitectural cost collection: the power-proxy feed. Only
		// warps whose hooks implement CostHooks pay the call; for everyone
		// else (including the always-on tracer) this is one predictable
		// nil test per retained uop.
		if r.cost != nil && u.writes {
			r.cost.OnRegWrite(blockID, int(u.ci), r.vec(u.dst), mask)
		}
	}
	return false, nil
}

// instrErr attributes an execution error to its kernel/block/instruction/
// lane, in the same shape as the per-lane interpreter did.
func (r *WarpRun) instrErr(blockID int, u *uop, lane int, err error) error {
	return fmt.Errorf("simt: kernel %q B%d instr %d lane %d: %w",
		r.exec.kernel.Name, blockID, u.ci, lane, err)
}

// memLoad executes one load instruction across the warp and fires the
// memory hook. In-range DirectMemory accesses index the backing slice;
// everything else goes through the Memory interface. Untraced warps skip
// the address buffer entirely.
func (r *WarpRun) memLoad(u *uop, blockID int, mask uint32, dense bool, lo, hi int) error {
	d, av := r.vec(u.dst), r.vec(u.a)
	imm := u.imm
	if u.class == uExtLoad {
		// Fold the byte-extract into the address base: one pass over the
		// active lanes into the shfl scratch (free outside uShfl), then
		// the load paths below proceed unchanged.
		sh, mv := uint64(u.b), u.imm2
		x := &r.shfl
		if dense {
			xx, aa := x[lo:hi], av[lo:hi]
			for i := range xx {
				xx[i] = int64(uint64(aa[i])>>sh) & mv
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				x[l] = int64(uint64(av[l])>>sh) & mv
			}
		}
		av = x
	}
	traced := r.hooks != nil
	addrs := r.scratch[:0]

	var backing []int64
	direct := false
	if r.direct {
		switch u.space {
		case isa.SpaceGlobal:
			backing, direct = r.dGlobal, r.dGlobal != nil
		case isa.SpaceConstant:
			backing, direct = r.dConst, r.dConst != nil
		case isa.SpaceShared:
			backing, direct = r.dShared, r.dShared != nil
		case isa.SpaceLocal:
			if ls := r.dLocal; ls != nil {
				if dense {
					for l := lo; l < hi; l++ {
						ad := av[l] + imm
						d[l] = ls.Load(l, ad)
						if traced {
							addrs = append(addrs, ad)
						}
					}
				} else {
					for m := mask; m != 0; m &= m - 1 {
						l := bits.TrailingZeros32(m)
						ad := av[l] + imm
						d[l] = ls.Load(l, ad)
						addrs = append(addrs, ad)
					}
				}
				r.fireMem(u, blockID, false, addrs)
				return nil
			}
		}
	}

	if direct {
		if dense && !traced {
			// Untraced fast path: no address bookkeeping.
			for l := lo; l < hi; l++ {
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					d[l] = backing[ad]
				} else {
					v, err := r.mem.Load(u.space, l, ad)
					if err != nil {
						return r.instrErr(blockID, u, l, err)
					}
					d[l] = v
				}
			}
			return nil
		}
		if dense {
			for l := lo; l < hi; l++ {
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					d[l] = backing[ad]
				} else {
					v, err := r.mem.Load(u.space, l, ad)
					if err != nil {
						return r.instrErr(blockID, u, l, err)
					}
					d[l] = v
				}
				addrs = append(addrs, ad)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					d[l] = backing[ad]
				} else {
					v, err := r.mem.Load(u.space, l, ad)
					if err != nil {
						return r.instrErr(blockID, u, l, err)
					}
					d[l] = v
				}
				addrs = append(addrs, ad)
			}
		}
	} else {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			ad := av[l] + imm
			v, err := r.mem.Load(u.space, l, ad)
			if err != nil {
				return r.instrErr(blockID, u, l, err)
			}
			d[l] = v
			addrs = append(addrs, ad)
		}
	}
	r.fireMem(u, blockID, false, addrs)
	return nil
}

// memStore executes one store instruction across the warp and fires the
// memory hook.
func (r *WarpRun) memStore(u *uop, blockID int, mask uint32, dense bool, lo, hi int) error {
	av, bv := r.vec(u.a), r.vec(u.b)
	imm := u.imm
	traced := r.hooks != nil
	addrs := r.scratch[:0]

	var backing []int64
	direct := false
	if r.direct {
		switch u.space {
		case isa.SpaceGlobal:
			backing, direct = r.dGlobal, r.dGlobal != nil
		case isa.SpaceShared:
			backing, direct = r.dShared, r.dShared != nil
		case isa.SpaceLocal:
			if ls := r.dLocal; ls != nil {
				if dense {
					for l := lo; l < hi; l++ {
						ad := av[l] + imm
						ls.Store(l, ad, bv[l])
						if traced {
							addrs = append(addrs, ad)
						}
					}
				} else {
					for m := mask; m != 0; m &= m - 1 {
						l := bits.TrailingZeros32(m)
						ad := av[l] + imm
						ls.Store(l, ad, bv[l])
						addrs = append(addrs, ad)
					}
				}
				r.fireMem(u, blockID, true, addrs)
				return nil
			}
		}
		// Constant stays indirect: stores to it must produce the
		// memory's read-only diagnostic.
	}

	if direct {
		if dense && !traced {
			for l := lo; l < hi; l++ {
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					backing[ad] = bv[l]
				} else if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
					return r.instrErr(blockID, u, l, err)
				}
			}
			return nil
		}
		if dense {
			for l := lo; l < hi; l++ {
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					backing[ad] = bv[l]
				} else if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
					return r.instrErr(blockID, u, l, err)
				}
				addrs = append(addrs, ad)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					backing[ad] = bv[l]
				} else if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
					return r.instrErr(blockID, u, l, err)
				}
				addrs = append(addrs, ad)
			}
		}
	} else {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			ad := av[l] + imm
			if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
				return r.instrErr(blockID, u, l, err)
			}
			addrs = append(addrs, ad)
		}
	}
	r.fireMem(u, blockID, true, addrs)
	return nil
}

// fireMem delivers one memory-access event. The addrs buffer is owned by
// the run and reused; hooks must not retain it.
func (r *WarpRun) fireMem(u *uop, blockID int, store bool, addrs []int64) {
	if r.hooks != nil {
		r.hooks.OnMemAccess(blockID, int(u.memIdx), u.space, store, addrs)
	}
}
