package simt

// The warp-vectorized interpreter. Resume walks the SIMT reconvergence
// stack exactly as the original per-lane interpreter did — the hook event
// sequences ((block, mask) enters and (block, memIdx, space, store,
// addrs) accesses) are invariant under this rewrite — but each decoded
// instruction executes as ONE switch dispatch followed by a lane loop,
// instead of one dispatch per active lane:
//
//   - the active-mask test is hoisted: a full-mask warp takes a dense
//     0..nl loop with no per-lane mask check, a divergent warp iterates
//     set bits with m &= m-1 / TrailingZeros32;
//   - register vectors are *[WarpWidth]int64 windows into the SoA file,
//     so lane indexing is one add against a constant-size array;
//   - loads and stores index DirectMemory backing slices in range and
//     re-issue through the Memory interface out of range, keeping the
//     interface path's diagnostics byte-compatible;
//   - instruction counting adds the block's popcount once per decoded
//     instruction (math/bits.OnesCount32, not a hand-rolled loop).

import (
	"fmt"
	"math/bits"

	"owl/internal/isa"
)

// Resume executes until the warp retires (returns false) or reaches a
// barrier (returns true). A barrier inside divergent control flow is an
// error, as on real hardware.
func (r *WarpRun) Resume() (atBarrier bool, err error) {
	if r.done {
		return false, nil
	}
	e := r.exec

	for len(r.stack) > 0 {
		top := &r.stack[len(r.stack)-1]
		if top.mask == 0 || top.pc == top.rpc || top.pc < 0 {
			r.stack = r.stack[:len(r.stack)-1]
			continue
		}
		if r.st.BlocksExecuted >= e.maxBlocks {
			return false, fmt.Errorf("simt: kernel %q warp %d exceeded %d blocks (possible infinite loop)",
				e.kernel.Name, r.wp.WarpID, e.maxBlocks)
		}
		blockID := top.pc
		mask := top.mask
		bp := &e.progs[blockID]

		start := 0
		if r.resume >= 0 {
			// Continuing past a barrier: the block was already entered.
			start = r.resume
			r.resume = -1
		} else {
			r.st.BlocksExecuted++
			if r.hooks != nil {
				r.hooks.OnBlockEnter(blockID, mask)
			}
		}

		var taken uint32
		bar, err := r.execBlock(bp, blockID, mask, start, &taken)
		if err != nil {
			return false, err
		}
		if bar {
			return true, nil
		}

		switch bp.term.Kind {
		case isa.TermJump:
			top.pc = bp.term.True
		case isa.TermRet:
			// Retire these lanes from every entry below.
			done := top.mask
			r.stack = r.stack[:len(r.stack)-1]
			for i := range r.stack {
				r.stack[i].mask &^= done
			}
		case isa.TermBranch:
			if !(bp.fused && start < len(bp.ops)) {
				// Unfused: one pass over the condition register.
				cv := r.vec(int32(bp.term.Cond) * WarpWidth)
				taken = 0
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if cv[l] != 0 {
						taken |= 1 << uint(l)
					}
				}
			}
			fall := mask &^ taken
			switch {
			case fall == 0:
				top.pc = bp.term.True
			case taken == 0:
				top.pc = bp.term.False
			default:
				rpc := bp.ipdom
				// Convert TOS into the reconvergence entry, then push the
				// two sides; the taken side executes first.
				top.pc = rpc
				r.stack = append(r.stack,
					simtEntry{pc: bp.term.False, rpc: rpc, mask: fall},
					simtEntry{pc: bp.term.True, rpc: rpc, mask: taken},
				)
			}
		}
	}
	r.done = true
	return false, nil
}

// execBlock runs the decoded instructions of one block from start under
// mask. taken receives the taken-lane mask of a fused trailing compare.
func (r *WarpRun) execBlock(bp *blockProg, blockID int, mask uint32, start int, taken *uint32) (atBarrier bool, err error) {
	nl := r.nl
	nAct := int64(bits.OnesCount32(mask))
	full := mask == r.fullMask
	ops := bp.ops
	for i := start; i < len(ops); i++ {
		u := &ops[i]
		if u.class != uBarrier {
			r.st.Instructions += nAct
		}
		switch u.class {
		case uNop:
		case uBarrier:
			if len(r.stack) != 1 {
				return false, fmt.Errorf("simt: kernel %q B%d: barrier inside divergent control flow",
					r.exec.kernel.Name, blockID)
			}
			r.resume = i + 1
			return true, nil

		case uConst:
			d, v := r.vec(u.dst), u.imm
			if full {
				for l := 0; l < nl; l++ {
					d[l] = v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					d[bits.TrailingZeros32(m)] = v
				}
			}
		case uMov:
			d, a := r.vec(u.dst), r.vec(u.a)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l]
				}
			}
		case uNot:
			d, a := r.vec(u.dst), r.vec(u.a)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = b2i(a[l] == 0)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = b2i(a[l] == 0)
				}
			}
		case uSelect:
			d, a, b, c := r.vec(u.dst), r.vec(u.a), r.vec(u.b), r.vec(u.c)
			if full {
				for l := 0; l < nl; l++ {
					if a[l] != 0 {
						d[l] = b[l]
					} else {
						d[l] = c[l]
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] != 0 {
						d[l] = b[l]
					} else {
						d[l] = c[l]
					}
				}
			}

		case uSpecLane:
			d, v := r.vec(u.dst), &r.laneVecs[u.lvec]
			if full {
				for l := 0; l < nl; l++ {
					d[l] = v[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = v[l]
				}
			}
		case uSpecUni:
			if serr := r.uniErrs[u.a]; serr != nil {
				return false, r.instrErr(blockID, u, bits.TrailingZeros32(mask), serr)
			}
			d, v := r.vec(u.dst), r.uniVals[u.a]
			if full {
				for l := 0; l < nl; l++ {
					d[l] = v
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					d[bits.TrailingZeros32(m)] = v
				}
			}

		case uShfl:
			// Cross-lane read: every lane sees the pre-instruction value
			// of the source register, via the per-run scratch snapshot.
			a := r.vec(u.a)
			copy(r.shfl[:nl], a[:nl])
			d, b := r.vec(u.dst), r.vec(u.b)
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				d[l] = r.shfl[uint64(b[l])%uint64(nl)]
			}

		case uLoad:
			if err := r.memLoad(u, blockID, mask, full); err != nil {
				return false, err
			}
		case uStore:
			if err := r.memStore(u, blockID, mask, full); err != nil {
				return false, err
			}

		case uAdd:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] + b[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] + b[l]
				}
			}
		case uSub:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] - b[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] - b[l]
				}
			}
		case uMul:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] * b[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] * b[l]
				}
			}
		case uDiv:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if b[l] == 0 {
					return false, r.instrErr(blockID, u, l, fmt.Errorf("division by zero"))
				}
				d[l] = a[l] / b[l]
			}
		case uMod:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				if b[l] == 0 {
					return false, r.instrErr(blockID, u, l, fmt.Errorf("modulo by zero"))
				}
				d[l] = a[l] % b[l]
			}
		case uAnd:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] & b[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] & b[l]
				}
			}
		case uOr:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] | b[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] | b[l]
				}
			}
		case uXor:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] ^ b[l]
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] ^ b[l]
				}
			}
		case uShl:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] << (uint64(b[l]) & 63)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] << (uint64(b[l]) & 63)
				}
			}
		case uShr:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = int64(uint64(a[l]) >> (uint64(b[l]) & 63))
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = int64(uint64(a[l]) >> (uint64(b[l]) & 63))
				}
			}
		case uSar:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = a[l] >> (uint64(b[l]) & 63)
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = a[l] >> (uint64(b[l]) & 63)
				}
			}
		case uMin:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = min(a[l], b[l])
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = min(a[l], b[l])
				}
			}
		case uMax:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			if full {
				for l := 0; l < nl; l++ {
					d[l] = max(a[l], b[l])
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					d[l] = max(a[l], b[l])
				}
			}

		case uCmpEQ:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if full {
				for l := 0; l < nl; l++ {
					if a[l] == b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] == b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpNE:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if full {
				for l := 0; l < nl; l++ {
					if a[l] != b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] != b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpLT:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if full {
				for l := 0; l < nl; l++ {
					if a[l] < b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] < b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpLE:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if full {
				for l := 0; l < nl; l++ {
					if a[l] <= b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] <= b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpGT:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if full {
				for l := 0; l < nl; l++ {
					if a[l] > b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] > b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk
		case uCmpGE:
			d, a, b := r.vec(u.dst), r.vec(u.a), r.vec(u.b)
			var tk uint32
			if full {
				for l := 0; l < nl; l++ {
					if a[l] >= b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			} else {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					if a[l] >= b[l] {
						d[l] = 1
						tk |= 1 << uint(l)
					} else {
						d[l] = 0
					}
				}
			}
			*taken = tk

		default:
			return false, r.instrErr(blockID, u, bits.TrailingZeros32(mask),
				fmt.Errorf("unknown opcode"))
		}
	}
	return false, nil
}

// instrErr attributes an execution error to its kernel/block/instruction/
// lane, in the same shape as the per-lane interpreter did.
func (r *WarpRun) instrErr(blockID int, u *uop, lane int, err error) error {
	return fmt.Errorf("simt: kernel %q B%d instr %d lane %d: %w",
		r.exec.kernel.Name, blockID, u.ci, lane, err)
}

// memLoad executes one load instruction across the warp and fires the
// memory hook. In-range DirectMemory accesses index the backing slice;
// everything else goes through the Memory interface.
func (r *WarpRun) memLoad(u *uop, blockID int, mask uint32, full bool) error {
	nl := r.nl
	d, av := r.vec(u.dst), r.vec(u.a)
	imm := u.imm
	addrs := r.scratch[:0]

	var backing []int64
	direct := false
	if r.direct {
		switch u.space {
		case isa.SpaceGlobal:
			backing, direct = r.dGlobal, r.dGlobal != nil
		case isa.SpaceConstant:
			backing, direct = r.dConst, r.dConst != nil
		case isa.SpaceShared:
			backing, direct = r.dShared, r.dShared != nil
		case isa.SpaceLocal:
			if ls := r.dLocal; ls != nil {
				if full {
					for l := 0; l < nl; l++ {
						ad := av[l] + imm
						d[l] = ls.Load(l, ad)
						addrs = append(addrs, ad)
					}
				} else {
					for m := mask; m != 0; m &= m - 1 {
						l := bits.TrailingZeros32(m)
						ad := av[l] + imm
						d[l] = ls.Load(l, ad)
						addrs = append(addrs, ad)
					}
				}
				r.fireMem(u, blockID, false, addrs)
				return nil
			}
		}
	}

	if direct {
		if full {
			for l := 0; l < nl; l++ {
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					d[l] = backing[ad]
				} else {
					v, err := r.mem.Load(u.space, l, ad)
					if err != nil {
						return r.instrErr(blockID, u, l, err)
					}
					d[l] = v
				}
				addrs = append(addrs, ad)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					d[l] = backing[ad]
				} else {
					v, err := r.mem.Load(u.space, l, ad)
					if err != nil {
						return r.instrErr(blockID, u, l, err)
					}
					d[l] = v
				}
				addrs = append(addrs, ad)
			}
		}
	} else {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			ad := av[l] + imm
			v, err := r.mem.Load(u.space, l, ad)
			if err != nil {
				return r.instrErr(blockID, u, l, err)
			}
			d[l] = v
			addrs = append(addrs, ad)
		}
	}
	r.fireMem(u, blockID, false, addrs)
	return nil
}

// memStore executes one store instruction across the warp and fires the
// memory hook.
func (r *WarpRun) memStore(u *uop, blockID int, mask uint32, full bool) error {
	nl := r.nl
	av, bv := r.vec(u.a), r.vec(u.b)
	imm := u.imm
	addrs := r.scratch[:0]

	var backing []int64
	direct := false
	if r.direct {
		switch u.space {
		case isa.SpaceGlobal:
			backing, direct = r.dGlobal, r.dGlobal != nil
		case isa.SpaceShared:
			backing, direct = r.dShared, r.dShared != nil
		case isa.SpaceLocal:
			if ls := r.dLocal; ls != nil {
				if full {
					for l := 0; l < nl; l++ {
						ad := av[l] + imm
						ls.Store(l, ad, bv[l])
						addrs = append(addrs, ad)
					}
				} else {
					for m := mask; m != 0; m &= m - 1 {
						l := bits.TrailingZeros32(m)
						ad := av[l] + imm
						ls.Store(l, ad, bv[l])
						addrs = append(addrs, ad)
					}
				}
				r.fireMem(u, blockID, true, addrs)
				return nil
			}
		}
		// Constant stays indirect: stores to it must produce the
		// memory's read-only diagnostic.
	}

	if direct {
		if full {
			for l := 0; l < nl; l++ {
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					backing[ad] = bv[l]
				} else if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
					return r.instrErr(blockID, u, l, err)
				}
				addrs = append(addrs, ad)
			}
		} else {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				ad := av[l] + imm
				if uint64(ad) < uint64(len(backing)) {
					backing[ad] = bv[l]
				} else if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
					return r.instrErr(blockID, u, l, err)
				}
				addrs = append(addrs, ad)
			}
		}
	} else {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			ad := av[l] + imm
			if err := r.mem.Store(u.space, l, ad, bv[l]); err != nil {
				return r.instrErr(blockID, u, l, err)
			}
			addrs = append(addrs, ad)
		}
	}
	r.fireMem(u, blockID, true, addrs)
	return nil
}

// fireMem delivers one memory-access event. The addrs buffer is owned by
// the run and reused; hooks must not retain it.
func (r *WarpRun) fireMem(u *uop, blockID int, store bool, addrs []int64) {
	if r.hooks != nil {
		r.hooks.OnMemAccess(blockID, int(u.memIdx), u.space, store, addrs)
	}
}
