package simt

// Differential fuzzing of the warp-vectorized interpreter against the
// per-lane reference (ref_test.go): random structured kernels are built
// with kbuild and executed by both, and everything observable must match —
// hook traces (block enters with masks, memory events with addresses),
// memory-visible effects, statistics, and error strings. Run it with
// `make fuzz-simt`; TestInterpMatchesReference replays a fixed batch of
// seeds on every plain `go test`.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"owl/internal/isa"
	"owl/internal/kbuild"
)

// genFuzzKernel builds a random structured kernel: ALU soup over a
// growing register pool, loads and stores across all four spaces,
// possibly-trapping div/mod and parameter reads, shuffles, selects,
// barriers, and nested tid-dependent control flow (so warps diverge).
func genFuzzKernel(r *rand.Rand) (*isa.Kernel, error) {
	b := kbuild.New("fuzz", 2)
	b.SetShared(16)
	pool := []isa.Reg{
		b.ConstR(int64(r.Intn(64))),
		b.ConstR(int64(r.Intn(64)) - 32),
		b.Tid(),
		b.Special(isa.SpecLaneID),
	}
	pick := func() isa.Reg { return pool[r.Intn(len(pool))] }

	aluOps := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMin, isa.OpMax,
		isa.OpCmpEQ, isa.OpCmpNE, isa.OpCmpLT, isa.OpCmpLE, isa.OpCmpGT, isa.OpCmpGE,
	}
	spaces := []isa.Space{isa.SpaceGlobal, isa.SpaceShared, isa.SpaceLocal, isa.SpaceConstant}
	// The param selectors trap at runtime when the launch supplies fewer
	// than two arguments, exercising the lazy-error path.
	sels := []int64{
		isa.SpecTidX, isa.SpecTidY, isa.SpecCtaidX, isa.SpecNtidX,
		isa.SpecNctaidX, isa.SpecWarpID, isa.SpecLaneID, isa.SpecGlobalTid,
		isa.SpecParamBase, isa.SpecParamBase + 1,
	}

	var gen func(depth, stmts int)
	gen = func(depth, stmts int) {
		for s := 0; s < stmts; s++ {
			switch r.Intn(12) {
			case 0, 1, 2, 3:
				pool = append(pool, b.BinR(aluOps[r.Intn(len(aluOps))], pick(), pick()))
			case 4: // may trap on a zero divisor — both interpreters must agree
				if r.Intn(2) == 0 {
					pool = append(pool, b.Div(pick(), pick()))
				} else {
					pool = append(pool, b.Mod(pick(), pick()))
				}
			case 5, 6:
				space := spaces[r.Intn(len(spaces))]
				addr := b.BinR(isa.OpAnd, pick(), b.ConstR(31))
				if space != isa.SpaceConstant && r.Intn(2) == 0 {
					b.Store(space, addr, int64(r.Intn(4)), pick())
				} else {
					pool = append(pool, b.Load(space, addr, int64(r.Intn(4))))
				}
			case 7:
				if r.Intn(2) == 0 {
					pool = append(pool, b.Select(pick(), pick(), pick()))
				} else {
					pool = append(pool, b.Shfl(pick(), pick()))
				}
			case 8:
				if depth < 3 {
					cond := b.CmpLT(pick(), pick())
					if r.Intn(2) == 0 {
						b.If(cond,
							func() { gen(depth+1, 1+r.Intn(3)) },
							func() { gen(depth+1, 1+r.Intn(3)) })
					} else {
						b.If(cond, func() { gen(depth+1, 1+r.Intn(3)) }, nil)
					}
				}
			case 9:
				if depth < 2 {
					b.ForConst(0, int64(1+r.Intn(4)), func(i isa.Reg) {
						pool = append(pool, i)
						gen(depth+1, 1+r.Intn(3))
					})
				}
			case 10: // a barrier in divergent flow must trap identically
				b.Barrier()
			case 11:
				pool = append(pool, b.Special(sels[r.Intn(len(sels))]))
			}
		}
	}
	gen(0, 6+r.Intn(10))

	// Spill a sample of the pool so register effects are memory-visible.
	for i := 0; i < 8; i++ {
		b.Store(isa.SpaceGlobal, b.ConstR(int64(100+i)), 0, pick())
	}
	return b.Build()
}

// checkInterpEquivalence executes one generated kernel on both
// interpreters and fails the test on any observable difference.
func checkInterpEquivalence(t *testing.T, seed int64, nlRaw uint8, nParams uint8, p0, p1 int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	k, err := genFuzzKernel(r)
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatalf("seed %d: executor: %v", seed, err)
	}

	wp := fullWarp()
	wp.Lanes = wp.Lanes[:1+int(nlRaw)%WarpWidth]
	wp.Params = []int64{p0, p1}[:int(nParams)%3] // 0..2 params, so reads may trap
	wp.BlockIdx = [3]int{int(seed & 3), 0, 0}

	memNew, memRef := newMapMem(), newMapMem()
	for i := int64(0); i < 32; i++ { // shared constant table
		memNew.consts[i] = i * 3
		memRef.consts[i] = i * 3
	}
	hNew, hRef := &recHooks{}, &recHooks{}

	stNew, errNew := exec.RunWarp(wp, memNew, hNew)
	stRef, errRef := refRunWarp(exec, wp, memRef, hRef)

	if (errNew == nil) != (errRef == nil) ||
		(errNew != nil && errNew.Error() != errRef.Error()) {
		t.Fatalf("seed %d: error mismatch:\n  vectorized: %v\n  reference:  %v", seed, errNew, errRef)
	}
	if stNew != stRef {
		t.Fatalf("seed %d: stats mismatch: vectorized %+v, reference %+v", seed, stNew, stRef)
	}
	if !reflect.DeepEqual(hNew.blocks, hRef.blocks) || !reflect.DeepEqual(hNew.masks, hRef.masks) {
		t.Fatalf("seed %d: block trace mismatch:\n  vectorized: %v %v\n  reference:  %v %v",
			seed, hNew.blocks, hNew.masks, hRef.blocks, hRef.masks)
	}
	if !reflect.DeepEqual(hNew.mems, hRef.mems) {
		t.Fatalf("seed %d: memory trace mismatch:\n  vectorized: %v\n  reference:  %v",
			seed, hNew.mems, hRef.mems)
	}
	for name, pair := range map[string][2]map[int64]int64{
		"global": {memNew.global, memRef.global},
		"shared": {memNew.shared, memRef.shared},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("seed %d: %s memory mismatch:\n  vectorized: %v\n  reference:  %v",
				seed, name, pair[0], pair[1])
		}
	}
	if !reflect.DeepEqual(memNew.local, memRef.local) {
		t.Fatalf("seed %d: local memory mismatch:\n  vectorized: %v\n  reference:  %v",
			seed, memNew.local, memRef.local)
	}
}

// blockWarpParams builds the per-warp launch parameters of one thread
// block of nW warps, as the GPU launch layer would: warp w covers
// threads [w*32, w*32+lanes), all warps sharing block geometry. lastLanes
// trims the final warp (0 keeps it full), which disqualifies lockstep.
func blockWarpParams(nW, lastLanes int, params []int64, blockIdx int) []WarpParams {
	wps := make([]WarpParams, nW)
	for w := 0; w < nW; w++ {
		nl := WarpWidth
		if w == nW-1 && lastLanes > 0 {
			nl = lastLanes
		}
		lanes := make([]LaneInfo, nl)
		for l := range lanes {
			tid := w*WarpWidth + l
			lanes[l] = LaneInfo{Tid: [3]int{tid, 0, 0}, GlobalID: tid}
		}
		wps[w] = WarpParams{
			WarpID:   w,
			BlockDim: [3]int{nW * WarpWidth, 1, 1},
			GridDim:  [3]int{1, 1, 1},
			BlockIdx: [3]int{blockIdx, 0, 0},
			Lanes:    lanes,
			Params:   params,
		}
	}
	return wps
}

// checkBlockInterpEquivalence executes one generated kernel as a whole
// multi-warp block on the block-batched driver and on the per-lane
// reference's rounds schedule, and fails on any observable difference —
// including after mid-flight lockstep fallbacks. traced attaches hooks
// to every warp (forcing the rounds driver and checking event order);
// untraced full-width blocks are lockstep-eligible, so this is the path
// that differentially exercises the batched fast path against shared-
// memory traffic and barriers.
func checkBlockInterpEquivalence(t *testing.T, seed int64, nWarpsRaw, nlRaw, nParams uint8, p0, p1 int64, traced bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	k, err := genFuzzKernel(r)
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatalf("seed %d: executor: %v", seed, err)
	}

	nW := 2 + int(nWarpsRaw)%3 // 2..4 resident warps
	lastLanes := 0
	if traced {
		lastLanes = 1 + int(nlRaw)%WarpWidth
	}
	params := []int64{p0, p1}[:int(nParams)%3]
	wps := blockWarpParams(nW, lastLanes, params, int(seed&3))

	// All warps of a block share one memory (global, shared, constant);
	// the reference gets an identical private copy.
	memNew, memRef := newMapMem(), newMapMem()
	for i := int64(0); i < 32; i++ {
		memNew.consts[i] = i * 3
		memRef.consts[i] = i * 3
	}
	mems := make([]Memory, nW)
	memsRef := make([]Memory, nW)
	hooks := make([]Hooks, nW)
	hooksRef := make([]Hooks, nW)
	for w := 0; w < nW; w++ {
		mems[w], memsRef[w] = memNew, memRef
		if traced {
			hooks[w], hooksRef[w] = &recHooks{}, &recHooks{}
		}
	}

	br, err := exec.NewBlockRun(wps, mems, hooks)
	if err != nil {
		t.Fatalf("seed %d: block run: %v", seed, err)
	}
	errNew := br.Run(nil)
	stNew := make([]Stats, nW)
	for w := 0; w < nW; w++ {
		stNew[w] = br.WarpStats(w)
	}
	br.Release()

	stRef, errRef := refRunBlock(exec, wps, memsRef, hooksRef)

	if (errNew == nil) != (errRef == nil) ||
		(errNew != nil && errNew.Error() != errRef.Error()) {
		t.Fatalf("seed %d (%d warps, traced=%v): error mismatch:\n  batched:   %v\n  reference: %v",
			seed, nW, traced, errNew, errRef)
	}
	for w := 0; w < nW; w++ {
		if stNew[w] != stRef[w] {
			t.Fatalf("seed %d (%d warps, traced=%v): warp %d stats mismatch: batched %+v, reference %+v",
				seed, nW, traced, w, stNew[w], stRef[w])
		}
	}
	if traced {
		for w := 0; w < nW; w++ {
			hN, hR := hooks[w].(*recHooks), hooksRef[w].(*recHooks)
			if !reflect.DeepEqual(hN.blocks, hR.blocks) || !reflect.DeepEqual(hN.masks, hR.masks) {
				t.Fatalf("seed %d: warp %d block trace mismatch:\n  batched:   %v %v\n  reference: %v %v",
					seed, w, hN.blocks, hN.masks, hR.blocks, hR.masks)
			}
			if !reflect.DeepEqual(hN.mems, hR.mems) {
				t.Fatalf("seed %d: warp %d memory trace mismatch:\n  batched:   %v\n  reference: %v",
					seed, w, hN.mems, hR.mems)
			}
		}
	}
	for name, pair := range map[string][2]map[int64]int64{
		"global": {memNew.global, memRef.global},
		"shared": {memNew.shared, memRef.shared},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("seed %d (%d warps, traced=%v): %s memory mismatch:\n  batched:   %v\n  reference: %v",
				seed, nW, traced, name, pair[0], pair[1])
		}
	}
	if !reflect.DeepEqual(memNew.local, memRef.local) {
		t.Fatalf("seed %d: local memory mismatch:\n  batched:   %v\n  reference: %v",
			seed, memNew.local, memRef.local)
	}
}

// FuzzInterpEquivalence is the open-ended fuzz entry: `make fuzz-simt`.
// Every input is checked three ways: single warp against the per-lane
// reference, and a multi-warp block — traced (rounds schedule, hook
// order included) and untraced (lockstep-eligible) — against the
// reference's rounds schedule.
func FuzzInterpEquivalence(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, uint8(31), uint8(2), int64(7), int64(1), uint8(seed))
		f.Add(seed, uint8(seed), uint8(seed), -seed, seed<<32, uint8(seed*3))
	}
	f.Fuzz(func(t *testing.T, seed int64, nlRaw uint8, nParams uint8, p0, p1 int64, nWarpsRaw uint8) {
		checkInterpEquivalence(t, seed, nlRaw, nParams, p0, p1)
		checkBlockInterpEquivalence(t, seed, nWarpsRaw, nlRaw, nParams, p0, p1, true)
		checkBlockInterpEquivalence(t, seed, nWarpsRaw, nlRaw, nParams, p0, p1, false)
	})
}

// TestInterpMatchesReference replays a fixed batch of fuzz seeds on every
// test run, so interpreter/reference divergence is caught without a
// dedicated fuzzing pass.
func TestInterpMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		checkInterpEquivalence(t, seed, uint8(seed*7), uint8(seed), seed-5, seed*11)
	}
}

// TestBlockInterpMatchesReference replays multi-warp fuzz seeds on every
// test run: traced blocks pin the rounds schedule's hook order, untraced
// blocks pin the lockstep fast path and its mid-flight fallbacks.
func TestBlockInterpMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		checkBlockInterpEquivalence(t, seed, uint8(seed), uint8(seed*7), uint8(seed), seed-5, seed*11, true)
		checkBlockInterpEquivalence(t, seed, uint8(seed), uint8(seed*7), uint8(seed), seed-5, seed*11, false)
	}
}

// TestBlockBatchOffMatchesOn pins the CLI escape hatch: with the
// lockstep driver disabled process-wide, a block must produce identical
// memory and statistics through the rounds driver.
func TestBlockBatchOffMatchesOn(t *testing.T) {
	defer SetBlockBatch(true)
	for seed := int64(0); seed < 60; seed++ {
		SetBlockBatch(true)
		memOn := blockRunForSeed(t, seed, true)
		SetBlockBatch(false)
		memOff := blockRunForSeed(t, seed, false)
		if !reflect.DeepEqual(memOn.global, memOff.global) ||
			!reflect.DeepEqual(memOn.shared, memOff.shared) {
			t.Fatalf("seed %d: block-batch on/off memory mismatch", seed)
		}
	}
}

// blockRunForSeed executes one generated kernel as an untraced 4-warp
// block under the current block-batch setting and returns its memory.
func blockRunForSeed(t *testing.T, seed int64, expectBatch bool) *mapMem {
	t.Helper()
	if BlockBatchEnabled() != expectBatch {
		t.Fatalf("seed %d: block batch enabled = %v, want %v", seed, BlockBatchEnabled(), expectBatch)
	}
	r := rand.New(rand.NewSource(seed))
	k, err := genFuzzKernel(r)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	wps := blockWarpParams(4, 0, []int64{seed, seed * 3}, 0)
	mem := newMapMem()
	for i := int64(0); i < 32; i++ {
		mem.consts[i] = i * 3
	}
	mems := make([]Memory, len(wps))
	for w := range mems {
		mems[w] = mem
	}
	br, err := exec.NewBlockRun(wps, mems, make([]Hooks, len(wps)))
	if err != nil {
		t.Fatal(err)
	}
	_ = br.Run(nil) // errors are fine; on/off must still agree on memory
	br.Release()
	return mem
}

// sliceMem is a DirectMemory test double backed by plain slices.
type sliceMem struct {
	global, shared, consts []int64
	local                  LocalSpace
}

func (m *sliceMem) Direct() Direct {
	return Direct{Global: m.global, Constant: m.consts, Shared: m.shared, Local: &m.local}
}

func (m *sliceMem) Load(space isa.Space, lane int, addr int64) (int64, error) {
	switch space {
	case isa.SpaceGlobal:
		if addr < 0 || addr >= int64(len(m.global)) {
			return 0, fmt.Errorf("global load at %d out of range", addr)
		}
		return m.global[addr], nil
	case isa.SpaceShared:
		if addr < 0 || addr >= int64(len(m.shared)) {
			return 0, fmt.Errorf("shared load at %d out of range", addr)
		}
		return m.shared[addr], nil
	case isa.SpaceConstant:
		if addr < 0 || addr >= int64(len(m.consts)) {
			return 0, fmt.Errorf("constant load at %d out of range", addr)
		}
		return m.consts[addr], nil
	case isa.SpaceLocal:
		return m.local.Load(lane, addr), nil
	}
	return 0, fmt.Errorf("bad space")
}

func (m *sliceMem) Store(space isa.Space, lane int, addr, v int64) error {
	switch space {
	case isa.SpaceGlobal:
		if addr < 0 || addr >= int64(len(m.global)) {
			return fmt.Errorf("global store at %d out of range", addr)
		}
		m.global[addr] = v
	case isa.SpaceShared:
		if addr < 0 || addr >= int64(len(m.shared)) {
			return fmt.Errorf("shared store at %d out of range", addr)
		}
		m.shared[addr] = v
	case isa.SpaceLocal:
		m.local.Store(lane, addr, v)
	default:
		return fmt.Errorf("bad space %v", space)
	}
	return nil
}

// TestDirectMatchesInterface runs the fuzz kernels a third time with a
// DirectMemory backing and checks the direct fast paths against the
// interface path of the same interpreter.
func TestDirectMatchesInterface(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		k, err := genFuzzKernel(r)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := NewExecutor(k)
		if err != nil {
			t.Fatal(err)
		}
		wp := fullWarp(7, 1)

		direct := &sliceMem{
			global: make([]int64, 256),
			shared: make([]int64, 64),
			consts: make([]int64, 64),
		}
		indirect := newMapMem()
		for i := int64(0); i < 64; i++ {
			direct.consts[i] = i * 3
			indirect.consts[i] = i * 3
		}
		hD, hI := &recHooks{}, &recHooks{}
		stD, errD := exec.RunWarp(wp, direct, hD)
		stI, errI := exec.RunWarp(wp, indirect, hI)
		if (errD == nil) != (errI == nil) {
			t.Fatalf("seed %d: error mismatch: direct %v, interface %v", seed, errD, errI)
		}
		if errD != nil {
			continue // diagnostics legitimately differ between memories
		}
		if stD != stI {
			t.Fatalf("seed %d: stats mismatch: direct %+v, interface %+v", seed, stD, stI)
		}
		if !reflect.DeepEqual(hD.blocks, hI.blocks) || !reflect.DeepEqual(hD.mems, hI.mems) {
			t.Fatalf("seed %d: trace mismatch between direct and interface paths", seed)
		}
		for a, v := range indirect.global {
			if a >= 0 && a < int64(len(direct.global)) && direct.global[a] != v {
				t.Fatalf("seed %d: global[%d] = %d direct, %d interface", seed, a, direct.global[a], v)
			}
		}
	}
}

// TestWarpLoopSteadyStateAllocs pins the tentpole's allocation claim: once
// the pools are warm, running a whole warp — setup, a multi-block loop
// with memory traffic, teardown — allocates nothing.
func TestWarpLoopSteadyStateAllocs(t *testing.T) {
	b := kbuild.New("steady", 0)
	acc := b.ConstR(0)
	b.ForConst(0, 64, func(i isa.Reg) {
		v := b.Load(isa.SpaceGlobal, b.BinR(isa.OpAnd, i, b.ConstR(31)), 0)
		b.Bin(isa.OpAdd, acc, acc, v)
		b.Store(isa.SpaceShared, b.BinR(isa.OpAnd, i, b.ConstR(15)), 0, acc)
	})
	b.Store(isa.SpaceGlobal, b.ConstR(40), 0, acc)
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	mem := &sliceMem{global: make([]int64, 64), shared: make([]int64, 16)}
	wp := fullWarp()
	run := func() {
		if _, err := exec.RunWarp(wp, mem, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pools
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Errorf("steady-state warp loop allocates %.1f times per run, want 0", avg)
	}
}

// TestBlockRunSteadyStateAllocs extends the steady-state claim to the
// block-batched driver: once its pools are warm, preparing, running, and
// releasing a whole multi-warp block — register file, warp runs, scratch
// — allocates nothing, on both the lockstep and the rounds path.
func TestBlockRunSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation disables inlining, defeating the escape analysis behind the zero-alloc claim")
	}
	// Lockstep-eligible: ALU loop over global loads with the result spilled
	// to per-thread local memory — no cross-warp-visible stores at all.
	bLock := kbuild.New("steady_lockstep", 0)
	accL := bLock.ConstR(0)
	bLock.ForConst(0, 64, func(i isa.Reg) {
		v := bLock.Load(isa.SpaceGlobal, bLock.BinR(isa.OpAnd, i, bLock.ConstR(31)), 0)
		bLock.Bin(isa.OpAdd, accL, accL, v)
	})
	bLock.Store(isa.SpaceLocal, bLock.ConstR(0), 0, accL)

	// Rounds-forcing: shared-memory stores make the kernel lockstep-unsafe.
	bRounds := kbuild.New("steady_rounds", 0)
	accR := bRounds.ConstR(0)
	bRounds.ForConst(0, 64, func(i isa.Reg) {
		v := bRounds.Load(isa.SpaceGlobal, bRounds.BinR(isa.OpAnd, i, bRounds.ConstR(31)), 0)
		bRounds.Bin(isa.OpAdd, accR, accR, v)
		bRounds.Store(isa.SpaceShared, bRounds.BinR(isa.OpAnd, i, bRounds.ConstR(15)), 0, accR)
		bRounds.Barrier()
	})
	bRounds.Store(isa.SpaceGlobal, bRounds.ConstR(40), 0, accR)

	for _, tc := range []struct {
		name string
		b    *kbuild.Builder
	}{{"lockstep", bLock}, {"rounds", bRounds}} {
		t.Run(tc.name, func(t *testing.T) {
			k, err := tc.b.Build()
			if err != nil {
				t.Fatal(err)
			}
			exec, err := NewExecutor(k)
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "lockstep" && !exec.lockstepSafe {
				t.Fatal("lockstep kernel not lockstep-safe")
			}
			const nW = 4
			mem := &sliceMem{global: make([]int64, 64), shared: make([]int64, 16)}
			wps := blockWarpParams(nW, 0, nil, 0)
			mems := make([]Memory, nW)
			for w := range mems {
				mems[w] = mem
			}
			hooks := make([]Hooks, nW)
			run := func() {
				br, err := exec.NewBlockRun(wps, mems, hooks)
				if err != nil {
					t.Fatal(err)
				}
				if err := br.Run(nil); err != nil {
					t.Fatal(err)
				}
				br.Release()
			}
			run() // warm the pools
			if avg := testing.AllocsPerRun(50, run); avg != 0 {
				t.Errorf("steady-state block run allocates %.1f times per run, want 0", avg)
			}
		})
	}
}
