package simt

// Differential fuzzing of the warp-vectorized interpreter against the
// per-lane reference (ref_test.go): random structured kernels are built
// with kbuild and executed by both, and everything observable must match —
// hook traces (block enters with masks, memory events with addresses),
// memory-visible effects, statistics, and error strings. Run it with
// `make fuzz-simt`; TestInterpMatchesReference replays a fixed batch of
// seeds on every plain `go test`.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"owl/internal/isa"
	"owl/internal/kbuild"
)

// genFuzzKernel builds a random structured kernel: ALU soup over a
// growing register pool, loads and stores across all four spaces,
// possibly-trapping div/mod and parameter reads, shuffles, selects,
// barriers, and nested tid-dependent control flow (so warps diverge).
func genFuzzKernel(r *rand.Rand) (*isa.Kernel, error) {
	b := kbuild.New("fuzz", 2)
	b.SetShared(16)
	pool := []isa.Reg{
		b.ConstR(int64(r.Intn(64))),
		b.ConstR(int64(r.Intn(64)) - 32),
		b.Tid(),
		b.Special(isa.SpecLaneID),
	}
	pick := func() isa.Reg { return pool[r.Intn(len(pool))] }

	aluOps := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMin, isa.OpMax,
		isa.OpCmpEQ, isa.OpCmpNE, isa.OpCmpLT, isa.OpCmpLE, isa.OpCmpGT, isa.OpCmpGE,
	}
	spaces := []isa.Space{isa.SpaceGlobal, isa.SpaceShared, isa.SpaceLocal, isa.SpaceConstant}
	// The param selectors trap at runtime when the launch supplies fewer
	// than two arguments, exercising the lazy-error path.
	sels := []int64{
		isa.SpecTidX, isa.SpecTidY, isa.SpecCtaidX, isa.SpecNtidX,
		isa.SpecNctaidX, isa.SpecWarpID, isa.SpecLaneID, isa.SpecGlobalTid,
		isa.SpecParamBase, isa.SpecParamBase + 1,
	}

	var gen func(depth, stmts int)
	gen = func(depth, stmts int) {
		for s := 0; s < stmts; s++ {
			switch r.Intn(12) {
			case 0, 1, 2, 3:
				pool = append(pool, b.BinR(aluOps[r.Intn(len(aluOps))], pick(), pick()))
			case 4: // may trap on a zero divisor — both interpreters must agree
				if r.Intn(2) == 0 {
					pool = append(pool, b.Div(pick(), pick()))
				} else {
					pool = append(pool, b.Mod(pick(), pick()))
				}
			case 5, 6:
				space := spaces[r.Intn(len(spaces))]
				addr := b.BinR(isa.OpAnd, pick(), b.ConstR(31))
				if space != isa.SpaceConstant && r.Intn(2) == 0 {
					b.Store(space, addr, int64(r.Intn(4)), pick())
				} else {
					pool = append(pool, b.Load(space, addr, int64(r.Intn(4))))
				}
			case 7:
				if r.Intn(2) == 0 {
					pool = append(pool, b.Select(pick(), pick(), pick()))
				} else {
					pool = append(pool, b.Shfl(pick(), pick()))
				}
			case 8:
				if depth < 3 {
					cond := b.CmpLT(pick(), pick())
					if r.Intn(2) == 0 {
						b.If(cond,
							func() { gen(depth+1, 1+r.Intn(3)) },
							func() { gen(depth+1, 1+r.Intn(3)) })
					} else {
						b.If(cond, func() { gen(depth+1, 1+r.Intn(3)) }, nil)
					}
				}
			case 9:
				if depth < 2 {
					b.ForConst(0, int64(1+r.Intn(4)), func(i isa.Reg) {
						pool = append(pool, i)
						gen(depth+1, 1+r.Intn(3))
					})
				}
			case 10: // a barrier in divergent flow must trap identically
				b.Barrier()
			case 11:
				pool = append(pool, b.Special(sels[r.Intn(len(sels))]))
			}
		}
	}
	gen(0, 6+r.Intn(10))

	// Spill a sample of the pool so register effects are memory-visible.
	for i := 0; i < 8; i++ {
		b.Store(isa.SpaceGlobal, b.ConstR(int64(100+i)), 0, pick())
	}
	return b.Build()
}

// checkInterpEquivalence executes one generated kernel on both
// interpreters and fails the test on any observable difference.
func checkInterpEquivalence(t *testing.T, seed int64, nlRaw uint8, nParams uint8, p0, p1 int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	k, err := genFuzzKernel(r)
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatalf("seed %d: executor: %v", seed, err)
	}

	wp := fullWarp()
	wp.Lanes = wp.Lanes[:1+int(nlRaw)%WarpWidth]
	wp.Params = []int64{p0, p1}[:int(nParams)%3] // 0..2 params, so reads may trap
	wp.BlockIdx = [3]int{int(seed & 3), 0, 0}

	memNew, memRef := newMapMem(), newMapMem()
	for i := int64(0); i < 32; i++ { // shared constant table
		memNew.consts[i] = i * 3
		memRef.consts[i] = i * 3
	}
	hNew, hRef := &recHooks{}, &recHooks{}

	stNew, errNew := exec.RunWarp(wp, memNew, hNew)
	stRef, errRef := refRunWarp(exec, wp, memRef, hRef)

	if (errNew == nil) != (errRef == nil) ||
		(errNew != nil && errNew.Error() != errRef.Error()) {
		t.Fatalf("seed %d: error mismatch:\n  vectorized: %v\n  reference:  %v", seed, errNew, errRef)
	}
	if stNew != stRef {
		t.Fatalf("seed %d: stats mismatch: vectorized %+v, reference %+v", seed, stNew, stRef)
	}
	if !reflect.DeepEqual(hNew.blocks, hRef.blocks) || !reflect.DeepEqual(hNew.masks, hRef.masks) {
		t.Fatalf("seed %d: block trace mismatch:\n  vectorized: %v %v\n  reference:  %v %v",
			seed, hNew.blocks, hNew.masks, hRef.blocks, hRef.masks)
	}
	if !reflect.DeepEqual(hNew.mems, hRef.mems) {
		t.Fatalf("seed %d: memory trace mismatch:\n  vectorized: %v\n  reference:  %v",
			seed, hNew.mems, hRef.mems)
	}
	for name, pair := range map[string][2]map[int64]int64{
		"global": {memNew.global, memRef.global},
		"shared": {memNew.shared, memRef.shared},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("seed %d: %s memory mismatch:\n  vectorized: %v\n  reference:  %v",
				seed, name, pair[0], pair[1])
		}
	}
	if !reflect.DeepEqual(memNew.local, memRef.local) {
		t.Fatalf("seed %d: local memory mismatch:\n  vectorized: %v\n  reference:  %v",
			seed, memNew.local, memRef.local)
	}
}

// FuzzInterpEquivalence is the open-ended fuzz entry: `make fuzz-simt`.
func FuzzInterpEquivalence(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, uint8(31), uint8(2), int64(7), int64(1))
		f.Add(seed, uint8(seed), uint8(seed), -seed, seed<<32)
	}
	f.Fuzz(func(t *testing.T, seed int64, nlRaw uint8, nParams uint8, p0, p1 int64) {
		checkInterpEquivalence(t, seed, nlRaw, nParams, p0, p1)
	})
}

// TestInterpMatchesReference replays a fixed batch of fuzz seeds on every
// test run, so interpreter/reference divergence is caught without a
// dedicated fuzzing pass.
func TestInterpMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		checkInterpEquivalence(t, seed, uint8(seed*7), uint8(seed), seed-5, seed*11)
	}
}

// sliceMem is a DirectMemory test double backed by plain slices.
type sliceMem struct {
	global, shared, consts []int64
	local                  LocalSpace
}

func (m *sliceMem) Direct() Direct {
	return Direct{Global: m.global, Constant: m.consts, Shared: m.shared, Local: &m.local}
}

func (m *sliceMem) Load(space isa.Space, lane int, addr int64) (int64, error) {
	switch space {
	case isa.SpaceGlobal:
		if addr < 0 || addr >= int64(len(m.global)) {
			return 0, fmt.Errorf("global load at %d out of range", addr)
		}
		return m.global[addr], nil
	case isa.SpaceShared:
		if addr < 0 || addr >= int64(len(m.shared)) {
			return 0, fmt.Errorf("shared load at %d out of range", addr)
		}
		return m.shared[addr], nil
	case isa.SpaceConstant:
		if addr < 0 || addr >= int64(len(m.consts)) {
			return 0, fmt.Errorf("constant load at %d out of range", addr)
		}
		return m.consts[addr], nil
	case isa.SpaceLocal:
		return m.local.Load(lane, addr), nil
	}
	return 0, fmt.Errorf("bad space")
}

func (m *sliceMem) Store(space isa.Space, lane int, addr, v int64) error {
	switch space {
	case isa.SpaceGlobal:
		if addr < 0 || addr >= int64(len(m.global)) {
			return fmt.Errorf("global store at %d out of range", addr)
		}
		m.global[addr] = v
	case isa.SpaceShared:
		if addr < 0 || addr >= int64(len(m.shared)) {
			return fmt.Errorf("shared store at %d out of range", addr)
		}
		m.shared[addr] = v
	case isa.SpaceLocal:
		m.local.Store(lane, addr, v)
	default:
		return fmt.Errorf("bad space %v", space)
	}
	return nil
}

// TestDirectMatchesInterface runs the fuzz kernels a third time with a
// DirectMemory backing and checks the direct fast paths against the
// interface path of the same interpreter.
func TestDirectMatchesInterface(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		k, err := genFuzzKernel(r)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := NewExecutor(k)
		if err != nil {
			t.Fatal(err)
		}
		wp := fullWarp(7, 1)

		direct := &sliceMem{
			global: make([]int64, 256),
			shared: make([]int64, 64),
			consts: make([]int64, 64),
		}
		indirect := newMapMem()
		for i := int64(0); i < 64; i++ {
			direct.consts[i] = i * 3
			indirect.consts[i] = i * 3
		}
		hD, hI := &recHooks{}, &recHooks{}
		stD, errD := exec.RunWarp(wp, direct, hD)
		stI, errI := exec.RunWarp(wp, indirect, hI)
		if (errD == nil) != (errI == nil) {
			t.Fatalf("seed %d: error mismatch: direct %v, interface %v", seed, errD, errI)
		}
		if errD != nil {
			continue // diagnostics legitimately differ between memories
		}
		if stD != stI {
			t.Fatalf("seed %d: stats mismatch: direct %+v, interface %+v", seed, stD, stI)
		}
		if !reflect.DeepEqual(hD.blocks, hI.blocks) || !reflect.DeepEqual(hD.mems, hI.mems) {
			t.Fatalf("seed %d: trace mismatch between direct and interface paths", seed)
		}
		for a, v := range indirect.global {
			if a >= 0 && a < int64(len(direct.global)) && direct.global[a] != v {
				t.Fatalf("seed %d: global[%d] = %d direct, %d interface", seed, a, direct.global[a], v)
			}
		}
	}
}

// TestWarpLoopSteadyStateAllocs pins the tentpole's allocation claim: once
// the pools are warm, running a whole warp — setup, a multi-block loop
// with memory traffic, teardown — allocates nothing.
func TestWarpLoopSteadyStateAllocs(t *testing.T) {
	b := kbuild.New("steady", 0)
	acc := b.ConstR(0)
	b.ForConst(0, 64, func(i isa.Reg) {
		v := b.Load(isa.SpaceGlobal, b.BinR(isa.OpAnd, i, b.ConstR(31)), 0)
		b.Bin(isa.OpAdd, acc, acc, v)
		b.Store(isa.SpaceShared, b.BinR(isa.OpAnd, i, b.ConstR(15)), 0, acc)
	})
	b.Store(isa.SpaceGlobal, b.ConstR(40), 0, acc)
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	mem := &sliceMem{global: make([]int64, 64), shared: make([]int64, 16)}
	wp := fullWarp()
	run := func() {
		if _, err := exec.RunWarp(wp, mem, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pools
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Errorf("steady-state warp loop allocates %.1f times per run, want 0", avg)
	}
}
