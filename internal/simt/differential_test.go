package simt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"owl/internal/isa"
)

// TestRandomProgramsMatchReference generates random straight-line ALU
// programs and checks the executor against an independently written Go
// evaluator, register for register.
func TestRandomProgramsMatchReference(t *testing.T) {
	const numRegs = 8

	// evalRef mirrors the ISA semantics, written independently of alu().
	evalRef := func(op isa.Op, a, b int64) int64 {
		boolTo := func(v bool) int64 {
			if v {
				return 1
			}
			return 0
		}
		switch op {
		case isa.OpAdd:
			return a + b
		case isa.OpSub:
			return a - b
		case isa.OpMul:
			return a * b
		case isa.OpAnd:
			return a & b
		case isa.OpOr:
			return a | b
		case isa.OpXor:
			return a ^ b
		case isa.OpShl:
			return a << (uint64(b) % 64)
		case isa.OpShr:
			return int64(uint64(a) >> (uint64(b) % 64))
		case isa.OpSar:
			return a >> (uint64(b) % 64)
		case isa.OpMin:
			if a < b {
				return a
			}
			return b
		case isa.OpMax:
			if a > b {
				return a
			}
			return b
		case isa.OpCmpEQ:
			return boolTo(a == b)
		case isa.OpCmpNE:
			return boolTo(a != b)
		case isa.OpCmpLT:
			return boolTo(a < b)
		case isa.OpCmpLE:
			return boolTo(a <= b)
		case isa.OpCmpGT:
			return boolTo(a > b)
		case isa.OpCmpGE:
			return boolTo(a >= b)
		}
		t.Fatalf("unexpected op %v", op)
		return 0
	}

	safeOps := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMin, isa.OpMax,
		isa.OpCmpEQ, isa.OpCmpNE, isa.OpCmpLT, isa.OpCmpLE, isa.OpCmpGT, isa.OpCmpGE,
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var code []isa.Instr
		ref := make([]int64, numRegs)
		// Seed the register file with constants.
		for i := 0; i < numRegs; i++ {
			v := r.Int63n(1<<20) - (1 << 19)
			code = append(code, isa.Instr{Op: isa.OpConst, Dst: isa.Reg(i), Imm: v})
			ref[i] = v
		}
		// Random instruction stream.
		for i := 0; i < 40; i++ {
			switch r.Intn(4) {
			case 0: // mov
				dst, src := isa.Reg(r.Intn(numRegs)), isa.Reg(r.Intn(numRegs))
				code = append(code, isa.Instr{Op: isa.OpMov, Dst: dst, A: src})
				ref[dst] = ref[src]
			case 1: // not
				dst, src := isa.Reg(r.Intn(numRegs)), isa.Reg(r.Intn(numRegs))
				code = append(code, isa.Instr{Op: isa.OpNot, Dst: dst, A: src})
				if ref[src] == 0 {
					ref[dst] = 1
				} else {
					ref[dst] = 0
				}
			case 2: // select
				dst := isa.Reg(r.Intn(numRegs))
				c, x, y := isa.Reg(r.Intn(numRegs)), isa.Reg(r.Intn(numRegs)), isa.Reg(r.Intn(numRegs))
				code = append(code, isa.Instr{Op: isa.OpSelect, Dst: dst, A: c, B: x, C: y})
				if ref[c] != 0 {
					ref[dst] = ref[x]
				} else {
					ref[dst] = ref[y]
				}
			default: // binary alu
				op := safeOps[r.Intn(len(safeOps))]
				dst := isa.Reg(r.Intn(numRegs))
				a, b := isa.Reg(r.Intn(numRegs)), isa.Reg(r.Intn(numRegs))
				code = append(code, isa.Instr{Op: op, Dst: dst, A: a, B: b})
				ref[dst] = evalRef(op, ref[a], ref[b])
			}
		}
		// Spill every register to global memory.
		addrReg := isa.Reg(numRegs)
		for i := 0; i < numRegs; i++ {
			code = append(code,
				isa.Instr{Op: isa.OpConst, Dst: addrReg, Imm: int64(i)},
				isa.Instr{Op: isa.OpStore, A: addrReg, B: isa.Reg(i), Space: isa.SpaceGlobal},
			)
		}
		k := &isa.Kernel{
			Name: "randprog", NumRegs: numRegs + 1,
			Blocks: []*isa.Block{{ID: 0, Code: code, Term: isa.Terminator{Kind: isa.TermRet}}},
		}
		exec, err := NewExecutor(k)
		if err != nil {
			return false
		}
		mem := newMapMem()
		wp := fullWarp()
		wp.Lanes = wp.Lanes[:1]
		if _, err := exec.RunWarp(wp, mem, nil); err != nil {
			return false
		}
		for i := 0; i < numRegs; i++ {
			if mem.global[int64(i)] != ref[i] {
				t.Logf("seed %d: reg %d = %d, reference %d", seed, i, mem.global[int64(i)], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
