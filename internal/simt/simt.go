// Package simt executes device kernels one warp at a time, with the
// SIMT-stack divergence model used by NVIDIA hardware: all (up to) 32 lanes
// of a warp execute the same instruction under an active mask; a divergent
// branch splits the mask and the two sides run serially until they
// reconverge at the branch block's immediate post-dominator.
//
// This is the behaviour the paper's warp-level tracing relies on (§V-A): a
// warp's basic-block trace is a property of the whole warp, while memory
// accesses are recorded per active lane.
package simt

import (
	"fmt"

	"owl/internal/cfg"
	"owl/internal/isa"
)

// WarpWidth is the number of lanes in a warp.
const WarpWidth = 32

// Hooks observes a warp's execution, mirroring NVBit's instrumentation
// callbacks. Implementations must not retain the addrs slice.
type Hooks interface {
	// OnBlockEnter fires when the warp enters a basic block with the given
	// active mask.
	OnBlockEnter(block int, mask uint32)
	// OnMemAccess fires for each executed memory instruction. memIdx is the
	// index of the instruction among the block's memory instructions (in
	// program order); addrs holds the addresses touched by active lanes.
	OnMemAccess(block, memIdx int, space isa.Space, store bool, addrs []int64)
}

// Memory provides the warp's view of device memory. lane selects the
// per-thread local space; it is ignored for the shared spaces.
type Memory interface {
	Load(space isa.Space, lane int, addr int64) (int64, error)
	Store(space isa.Space, lane int, addr, v int64) error
}

// LaneInfo carries the per-thread identity of one lane.
type LaneInfo struct {
	Tid      [3]int
	GlobalID int
}

// WarpParams describes the warp's position in the grid.
type WarpParams struct {
	WarpID   int
	BlockIdx [3]int
	BlockDim [3]int
	GridDim  [3]int
	Lanes    []LaneInfo // 1..WarpWidth entries
	Params   []int64    // kernel parameters
}

// Stats summarizes one warp execution.
type Stats struct {
	BlocksExecuted int
	Instructions   int64
}

// DefaultMaxBlocks bounds the number of basic blocks a single warp may
// execute, as an infinite-loop guard.
const DefaultMaxBlocks = 1 << 22

// Executor runs warps of one kernel. It is safe for concurrent use by
// multiple goroutines, each running distinct warps.
type Executor struct {
	kernel    *isa.Kernel
	graph     *cfg.Graph
	maxBlocks int
	memIdx    [][]int // per block: memory-instruction index by code index
}

// NewExecutor prepares a kernel for execution, computing its reconvergence
// points.
func NewExecutor(k *isa.Kernel) (*Executor, error) {
	g, err := cfg.New(k)
	if err != nil {
		return nil, err
	}
	mi := make([][]int, len(k.Blocks))
	for i, b := range k.Blocks {
		idx := make([]int, len(b.Code))
		n := 0
		for j, in := range b.Code {
			if in.IsMem() {
				idx[j] = n
				n++
			} else {
				idx[j] = -1
			}
		}
		mi[i] = idx
	}
	return &Executor{kernel: k, graph: g, maxBlocks: DefaultMaxBlocks, memIdx: mi}, nil
}

// SetMaxBlocks overrides the infinite-loop guard.
func (e *Executor) SetMaxBlocks(n int) { e.maxBlocks = n }

// stack entry of the SIMT reconvergence stack.
type simtEntry struct {
	pc   int // next block to execute; -1 means warp exit
	rpc  int // reconvergence block; -1 means warp exit
	mask uint32
}

// RunWarp executes one warp to completion. Barriers are trivially
// satisfied (single-warp view); use NewWarpRun for multi-warp thread
// blocks with real __syncthreads semantics.
func (e *Executor) RunWarp(wp WarpParams, mem Memory, hooks Hooks) (Stats, error) {
	run, err := e.NewWarpRun(wp, mem, hooks)
	if err != nil {
		return Stats{}, err
	}
	for !run.Done() {
		if _, err := run.Resume(); err != nil {
			return run.Stats(), err
		}
	}
	return run.Stats(), nil
}

// WarpRun is a resumable warp execution. Resume advances until the warp
// retires or reaches a block-wide barrier (OpBarrier), letting the device
// layer interleave the warps of a thread block with correct __syncthreads
// semantics.
type WarpRun struct {
	exec   *Executor
	wp     WarpParams
	mem    Memory
	hooks  Hooks
	nl     int
	regs   [][]int64
	stack  []simtEntry
	resume int // >= 0: re-enter the current block at this instruction
	st     Stats
	done   bool
}

// NewWarpRun prepares a suspended warp at its entry block.
func (e *Executor) NewWarpRun(wp WarpParams, mem Memory, hooks Hooks) (*WarpRun, error) {
	nl := len(wp.Lanes)
	if nl == 0 || nl > WarpWidth {
		return nil, fmt.Errorf("simt: warp %d has %d lanes", wp.WarpID, nl)
	}
	regs := make([][]int64, nl)
	for i := range regs {
		regs[i] = make([]int64, e.kernel.NumRegs)
	}
	initMask := uint32(0)
	if nl == WarpWidth {
		initMask = ^uint32(0)
	} else {
		initMask = (1 << uint(nl)) - 1
	}
	return &WarpRun{
		exec:   e,
		wp:     wp,
		mem:    mem,
		hooks:  hooks,
		nl:     nl,
		regs:   regs,
		stack:  []simtEntry{{pc: 0, rpc: -1, mask: initMask}},
		resume: -1,
	}, nil
}

// Done reports whether the warp has retired.
func (r *WarpRun) Done() bool { return r.done }

// Stats returns the accumulated execution statistics.
func (r *WarpRun) Stats() Stats { return r.st }

// Resume executes until the warp retires (returns false) or reaches a
// barrier (returns true). A barrier inside divergent control flow is an
// error, as on real hardware.
func (r *WarpRun) Resume() (atBarrier bool, err error) {
	if r.done {
		return false, nil
	}
	e := r.exec
	scratch := make([]int64, 0, WarpWidth)

	for len(r.stack) > 0 {
		top := &r.stack[len(r.stack)-1]
		if top.mask == 0 || top.pc == top.rpc || top.pc < 0 {
			r.stack = r.stack[:len(r.stack)-1]
			continue
		}
		if r.st.BlocksExecuted >= e.maxBlocks {
			return false, fmt.Errorf("simt: kernel %q warp %d exceeded %d blocks (possible infinite loop)",
				e.kernel.Name, r.wp.WarpID, e.maxBlocks)
		}
		blockID := top.pc
		mask := top.mask
		block := e.kernel.Blocks[blockID]

		start := 0
		if r.resume >= 0 {
			// Continuing past a barrier: the block was already entered.
			start = r.resume
			r.resume = -1
		} else {
			r.st.BlocksExecuted++
			if r.hooks != nil {
				r.hooks.OnBlockEnter(blockID, mask)
			}
		}

		for ci := start; ci < len(block.Code); ci++ {
			in := &block.Code[ci]
			if in.Op == isa.OpShfl {
				// Cross-lane read: every lane sees the pre-instruction
				// value of the source register.
				r.st.Instructions += int64(popcount(mask))
				pre := make([]int64, r.nl)
				for lane := 0; lane < r.nl; lane++ {
					pre[lane] = r.regs[lane][in.A]
				}
				for lane := 0; lane < r.nl; lane++ {
					if mask&(1<<uint(lane)) == 0 {
						continue
					}
					src := int(uint64(r.regs[lane][in.B]) % uint64(r.nl))
					r.regs[lane][in.Dst] = pre[src]
				}
				continue
			}
			if in.Op == isa.OpBarrier {
				if len(r.stack) != 1 {
					return false, fmt.Errorf("simt: kernel %q B%d: barrier inside divergent control flow",
						e.kernel.Name, blockID)
				}
				r.resume = ci + 1
				return true, nil
			}
			r.st.Instructions += int64(popcount(mask))
			if in.IsMem() {
				scratch = scratch[:0]
			}
			for lane := 0; lane < r.nl; lane++ {
				if mask&(1<<uint(lane)) == 0 {
					continue
				}
				addr, err := e.execInstr(in, r.regs[lane], lane, r.wp, r.mem)
				if err != nil {
					return false, fmt.Errorf("simt: kernel %q B%d instr %d lane %d: %w",
						e.kernel.Name, blockID, ci, lane, err)
				}
				if in.IsMem() {
					scratch = append(scratch, addr)
				}
			}
			if in.IsMem() && r.hooks != nil {
				r.hooks.OnMemAccess(blockID, e.memIdx[blockID][ci], in.Space, in.Op == isa.OpStore, scratch)
			}
		}

		switch block.Term.Kind {
		case isa.TermJump:
			top.pc = block.Term.True
		case isa.TermRet:
			// Retire these lanes from every entry below.
			done := top.mask
			r.stack = r.stack[:len(r.stack)-1]
			for i := range r.stack {
				r.stack[i].mask &^= done
			}
		case isa.TermBranch:
			var taken, fall uint32
			for lane := 0; lane < r.nl; lane++ {
				bit := uint32(1) << uint(lane)
				if mask&bit == 0 {
					continue
				}
				if r.regs[lane][block.Term.Cond] != 0 {
					taken |= bit
				} else {
					fall |= bit
				}
			}
			switch {
			case fall == 0:
				top.pc = block.Term.True
			case taken == 0:
				top.pc = block.Term.False
			default:
				rpc := e.graph.IPostDom(blockID)
				// Convert TOS into the reconvergence entry, then push the
				// two sides; the taken side executes first.
				top.pc = rpc
				r.stack = append(r.stack,
					simtEntry{pc: block.Term.False, rpc: rpc, mask: fall},
					simtEntry{pc: block.Term.True, rpc: rpc, mask: taken},
				)
			}
		}
	}
	r.done = true
	return false, nil
}

func (e *Executor) execInstr(in *isa.Instr, r []int64, lane int, wp WarpParams, mem Memory) (int64, error) {
	switch in.Op {
	case isa.OpNop, isa.OpBarrier:
	case isa.OpConst:
		r[in.Dst] = in.Imm
	case isa.OpMov:
		r[in.Dst] = r[in.A]
	case isa.OpNot:
		if r[in.A] == 0 {
			r[in.Dst] = 1
		} else {
			r[in.Dst] = 0
		}
	case isa.OpSelect:
		if r[in.A] != 0 {
			r[in.Dst] = r[in.B]
		} else {
			r[in.Dst] = r[in.C]
		}
	case isa.OpLoad:
		addr := r[in.A] + in.Imm
		v, err := mem.Load(in.Space, lane, addr)
		if err != nil {
			return 0, err
		}
		r[in.Dst] = v
		return addr, nil
	case isa.OpStore:
		addr := r[in.A] + in.Imm
		if err := mem.Store(in.Space, lane, addr, r[in.B]); err != nil {
			return 0, err
		}
		return addr, nil
	case isa.OpSpecial:
		v, err := e.special(in.Imm, lane, wp)
		if err != nil {
			return 0, err
		}
		r[in.Dst] = v
	default:
		v, err := alu(in.Op, r[in.A], r[in.B])
		if err != nil {
			return 0, err
		}
		r[in.Dst] = v
	}
	return 0, nil
}

func (e *Executor) special(sel int64, lane int, wp WarpParams) (int64, error) {
	li := wp.Lanes[lane]
	switch sel {
	case isa.SpecTidX:
		return int64(li.Tid[0]), nil
	case isa.SpecTidY:
		return int64(li.Tid[1]), nil
	case isa.SpecTidZ:
		return int64(li.Tid[2]), nil
	case isa.SpecCtaidX:
		return int64(wp.BlockIdx[0]), nil
	case isa.SpecCtaidY:
		return int64(wp.BlockIdx[1]), nil
	case isa.SpecCtaidZ:
		return int64(wp.BlockIdx[2]), nil
	case isa.SpecNtidX:
		return int64(wp.BlockDim[0]), nil
	case isa.SpecNtidY:
		return int64(wp.BlockDim[1]), nil
	case isa.SpecNtidZ:
		return int64(wp.BlockDim[2]), nil
	case isa.SpecNctaidX:
		return int64(wp.GridDim[0]), nil
	case isa.SpecNctaidY:
		return int64(wp.GridDim[1]), nil
	case isa.SpecNctaidZ:
		return int64(wp.GridDim[2]), nil
	case isa.SpecLaneID:
		return int64(lane), nil
	case isa.SpecWarpID:
		return int64(wp.WarpID), nil
	case isa.SpecGlobalTid:
		return int64(li.GlobalID), nil
	}
	if sel >= isa.SpecParamBase {
		i := int(sel - isa.SpecParamBase)
		if i >= len(wp.Params) {
			return 0, fmt.Errorf("param %d out of range (%d provided)", i, len(wp.Params))
		}
		return wp.Params[i], nil
	}
	return 0, fmt.Errorf("unknown special register %d", sel)
}

func alu(op isa.Op, a, b int64) (int64, error) {
	switch op {
	case isa.OpAdd:
		return a + b, nil
	case isa.OpSub:
		return a - b, nil
	case isa.OpMul:
		return a * b, nil
	case isa.OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case isa.OpMod:
		if b == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return a % b, nil
	case isa.OpAnd:
		return a & b, nil
	case isa.OpOr:
		return a | b, nil
	case isa.OpXor:
		return a ^ b, nil
	case isa.OpShl:
		return a << (uint64(b) & 63), nil
	case isa.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case isa.OpSar:
		return a >> (uint64(b) & 63), nil
	case isa.OpMin:
		if a < b {
			return a, nil
		}
		return b, nil
	case isa.OpMax:
		if a > b {
			return a, nil
		}
		return b, nil
	case isa.OpCmpEQ:
		return b2i(a == b), nil
	case isa.OpCmpNE:
		return b2i(a != b), nil
	case isa.OpCmpLT:
		return b2i(a < b), nil
	case isa.OpCmpLE:
		return b2i(a <= b), nil
	case isa.OpCmpGT:
		return b2i(a > b), nil
	case isa.OpCmpGE:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("unknown opcode %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
