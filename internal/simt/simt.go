// Package simt executes device kernels one warp at a time, with the
// SIMT-stack divergence model used by NVIDIA hardware: all (up to) 32 lanes
// of a warp execute the same instruction under an active mask; a divergent
// branch splits the mask and the two sides run serially until they
// reconverge at the branch block's immediate post-dominator.
//
// This is the behaviour the paper's warp-level tracing relies on (§V-A): a
// warp's basic-block trace is a property of the whole warp, while memory
// accesses are recorded per active lane.
//
// The interpreter is warp-vectorized: NewExecutor lowers each basic block
// once into a decoded program (see decode.go), registers live in a
// structure-of-arrays file (regs[reg*WarpWidth+lane]) recycled through a
// pool, and each decoded instruction executes as one lane loop under a
// hoisted active-mask test. Memories implementing the optional
// DirectMemory extension get slice-indexed loads and stores; any other
// Memory implementation takes the per-lane interface path, which remains
// the fully supported fallback (and the error path: a direct access that
// falls outside its backing slice re-issues through the interface so
// custom bounds diagnostics are preserved).
package simt

import (
	"fmt"
	"sync"

	"owl/internal/cfg"
	"owl/internal/isa"
)

// WarpWidth is the number of lanes in a warp.
const WarpWidth = 32

// Hooks observes a warp's execution, mirroring NVBit's instrumentation
// callbacks. Implementations must not retain the addrs slice: the
// interpreter reuses one address buffer for every memory instruction of
// the warp.
type Hooks interface {
	// OnBlockEnter fires when the warp enters a basic block with the given
	// active mask.
	OnBlockEnter(block int, mask uint32)
	// OnMemAccess fires for each executed memory instruction. memIdx is the
	// index of the instruction among the block's memory instructions (in
	// program order); addrs holds the addresses touched by active lanes.
	OnMemAccess(block, memIdx int, space isa.Space, store bool, addrs []int64)
}

// CostHooks is an optional extension of Hooks for microarchitectural cost
// collection. When a warp's Hooks implements it, the interpreter
// additionally fires OnRegWrite after each register-writing instruction
// retires — the feed of the Hamming-weight power proxy. Address-derived
// cost observables (bank conflicts, coalescing) need no extra interpreter
// support: they are computed from OnMemAccess. Implementations must not
// retain vals; the interpreter's register file is reused across blocks.
type CostHooks interface {
	Hooks
	// OnRegWrite fires after an instruction writes its destination
	// register. block is the executing basic block, instr the instruction's
	// code index within it, vals the warp's destination vector, and mask
	// the active lanes (only those lanes of vals were written).
	OnRegWrite(block, instr int, vals *[WarpWidth]int64, mask uint32)
}

// Memory provides the warp's view of device memory. lane selects the
// per-thread local space; it is ignored for the shared spaces.
type Memory interface {
	Load(space isa.Space, lane int, addr int64) (int64, error)
	Store(space isa.Space, lane int, addr, v int64) error
}

// DirectMemory is an optional extension of Memory that exposes the raw
// backing slices of the global, constant, and shared spaces plus the
// warp's flat local space. When a warp's Memory implements it, in-range
// loads and stores compile down to slice indexing; accesses outside the
// exposed backing (and stores to read-only spaces) fall back to the
// Memory interface, so error behaviour is identical on both paths.
//
// The slices must stay valid — same base, same length — for the lifetime
// of the warp; the interpreter snapshots them at warp setup.
type DirectMemory interface {
	Memory
	Direct() Direct
}

// Direct is the backing exposed by a DirectMemory. A nil slice (or nil
// Local) routes that space through the Memory interface.
type Direct struct {
	Global   []int64
	Constant []int64
	Shared   []int64
	Local    *LocalSpace
}

// LocalSpace is a warp's per-thread local memory, stored flat and
// addr-major (data[addr*WarpWidth+lane]) so the interpreter can index it
// directly. It materializes lazily to the high-water address the warp
// actually touches; unwritten addresses read zero, and out-of-band
// addresses (negative, or beyond the flat limit) spill to a sparse map,
// preserving the semantics of the earlier map-per-lane representation.
type LocalSpace struct {
	words int64   // flat words per lane currently materialized
	data  []int64 // addr-major backing, len == words*WarpWidth
	spill map[int]map[int64]int64
}

// localFlatWords bounds the flat representation (per lane). Addresses at
// or above it (or negative) use the spill map, so one wild store cannot
// force a huge allocation.
const localFlatWords = 1 << 16

// Load reads lane's local word at addr; unwritten addresses read zero.
func (s *LocalSpace) Load(lane int, addr int64) int64 {
	if uint64(addr) < uint64(s.words) {
		return s.data[addr*WarpWidth+int64(lane)]
	}
	if s.spill != nil {
		return s.spill[lane][addr]
	}
	return 0
}

// Store writes lane's local word at addr, growing the flat backing to
// cover addr when it is in flat range.
func (s *LocalSpace) Store(lane int, addr, v int64) {
	if addr >= 0 && addr < localFlatWords {
		if addr >= s.words {
			s.grow(addr + 1)
		}
		s.data[addr*WarpWidth+int64(lane)] = v
		return
	}
	if s.spill == nil {
		s.spill = make(map[int]map[int64]int64)
	}
	lm := s.spill[lane]
	if lm == nil {
		lm = make(map[int64]int64)
		s.spill[lane] = lm
	}
	lm[addr] = v
}

func (s *LocalSpace) grow(words int64) {
	n := words * WarpWidth
	if n <= int64(cap(s.data)) {
		old := len(s.data)
		s.data = s.data[:n]
		clear(s.data[old:])
	} else {
		// Double to amortize growth across a loop of increasing stores.
		c := 2 * int64(cap(s.data))
		if c < n {
			c = n
		}
		grown := make([]int64, n, c)
		copy(grown, s.data)
		s.data = grown
	}
	s.words = words
}

// Reset empties the space for reuse, keeping the flat backing capacity.
func (s *LocalSpace) Reset() {
	s.words = 0
	s.data = s.data[:0]
	s.spill = nil
}

// LaneInfo carries the per-thread identity of one lane.
type LaneInfo struct {
	Tid      [3]int
	GlobalID int
}

// WarpParams describes the warp's position in the grid.
type WarpParams struct {
	WarpID   int
	BlockIdx [3]int
	BlockDim [3]int
	GridDim  [3]int
	Lanes    []LaneInfo // 1..WarpWidth entries
	Params   []int64    // kernel parameters
}

// Stats summarizes one warp execution.
type Stats struct {
	BlocksExecuted int
	Instructions   int64
}

// DefaultMaxBlocks bounds the number of basic blocks a single warp may
// execute, as an infinite-loop guard.
const DefaultMaxBlocks = 1 << 22

// Executor runs warps of one kernel. It is safe for concurrent use by
// multiple goroutines, each running distinct warps: the decoded program
// is immutable after NewExecutor (launchers may therefore cache and share
// one Executor per kernel, provided the kernel is not mutated afterwards).
type Executor struct {
	kernel    *isa.Kernel
	graph     *cfg.Graph
	maxBlocks int
	progs     []blockProg
	uniSels   []int64 // warp-uniform special selectors, by slot
	numSlots  int     // renumbered register slots (≤ kernel.NumRegs)
	clearOffs []int32 // register-file offsets that must start zeroed
	// lockstepSafe reports that the kernel's memory traffic cannot make
	// one warp's loads observe another warp's stores within a block (see
	// decode.go), so warps sharing a program position may execute each
	// uop back to back instead of block by block.
	lockstepSafe bool
}

// NewExecutor prepares a kernel for execution: it computes reconvergence
// points and lowers every basic block into the decoded form the
// interpreter executes (see decode.go).
func NewExecutor(k *isa.Kernel) (*Executor, error) {
	g, err := cfg.New(k)
	if err != nil {
		return nil, err
	}
	e := &Executor{kernel: k, graph: g, maxBlocks: DefaultMaxBlocks}
	e.lower()
	return e, nil
}

// SetMaxBlocks overrides the infinite-loop guard.
func (e *Executor) SetMaxBlocks(n int) { e.maxBlocks = n }

// stack entry of the SIMT reconvergence stack.
type simtEntry struct {
	pc   int // next block to execute; -1 means warp exit
	rpc  int // reconvergence block; -1 means warp exit
	mask uint32
}

// RunWarp executes one warp to completion and recycles its state.
// Barriers are trivially satisfied (single-warp view); use NewWarpRun for
// multi-warp thread blocks with real __syncthreads semantics.
func (e *Executor) RunWarp(wp WarpParams, mem Memory, hooks Hooks) (Stats, error) {
	run, err := e.NewWarpRun(wp, mem, hooks)
	if err != nil {
		return Stats{}, err
	}
	for !run.Done() {
		if _, err := run.Resume(); err != nil {
			st := run.Stats()
			run.Release()
			return st, err
		}
	}
	st := run.Stats()
	run.Release()
	return st, nil
}

// WarpRun is a resumable warp execution. Resume advances until the warp
// retires or reaches a block-wide barrier (OpBarrier), letting the device
// layer interleave the warps of a thread block with correct __syncthreads
// semantics.
type WarpRun struct {
	exec     *Executor
	wp       WarpParams
	mem      Memory
	hooks    Hooks
	cost     CostHooks // hooks' CostHooks extension, or nil (asserted once at setup)
	nl       int
	fullMask uint32
	// SoA register file. A standalone warp owns regs outright (rsN=1,
	// rsB=0, layout regs[slot*WarpWidth+lane]); a warp inside a BlockRun
	// shares the block-wide [slot][warp][lane] file, viewing slot s at
	// regs[s*WarpWidth*rsN + rsB] (rsN = warps in the block, rsB =
	// warpIdx*WarpWidth). See block.go.
	regs   []int64
	rsN    int
	rsB    int
	stack  []simtEntry
	resume int // >= 0: re-enter the current block at this decoded index
	st     Stats
	done   bool
	// pendingErr holds an error detected while the warp was being driven
	// by the block-lockstep engine (see block.go); the next Resume
	// surfaces it.
	pendingErr error

	// Direct-memory fast paths, snapshotted from the Memory at setup.
	direct  bool
	dGlobal []int64
	dConst  []int64
	dShared []int64
	dLocal  *LocalSpace

	// Per-warp-constant specials, resolved at setup (see decode.go).
	laneVecs [numLaneVecs][WarpWidth]int64
	uniVals  []int64
	uniErrs  []error

	scratch [WarpWidth]int64 // address buffer passed to OnMemAccess
	shfl    [WarpWidth]int64 // OpShfl pre-instruction value snapshot
}

// warpRunPool recycles WarpRun state — most importantly the register
// file — across warps, keeping the steady-state warp loop allocation
// free.
var warpRunPool = sync.Pool{New: func() any { return new(WarpRun) }}

// NewWarpRun prepares a suspended warp at its entry block. Release the
// returned run (after it retires or is abandoned) to recycle its state.
func (e *Executor) NewWarpRun(wp WarpParams, mem Memory, hooks Hooks) (*WarpRun, error) {
	if err := checkWarpWidth(wp); err != nil {
		return nil, err
	}
	r := warpRunPool.Get().(*WarpRun)
	e.initWarpRun(r, wp, mem, hooks)

	// Standalone SoA register file, reusing pooled backing when big
	// enough. Sized by renumbered slots, not kernel registers: decode
	// packs the live registers densely. Only the slots decode proved
	// observable before their first write are zeroed (clearOffs, see
	// computeClearOffs); the rest hold stale pool garbage no execution
	// can read.
	r.rsN, r.rsB = 1, 0
	n := e.numSlots * WarpWidth
	if cap(r.regs) >= n {
		r.regs = r.regs[:n]
		if len(e.clearOffs)*2 >= e.numSlots {
			clear(r.regs)
		} else {
			for _, off := range e.clearOffs {
				clear(r.regs[off : off+WarpWidth])
			}
		}
	} else {
		r.regs = make([]int64, n)
	}
	return r, nil
}

func checkWarpWidth(wp WarpParams) error {
	if nl := len(wp.Lanes); nl == 0 || nl > WarpWidth {
		return fmt.Errorf("simt: warp %d has %d lanes", wp.WarpID, nl)
	}
	return nil
}

// initWarpRun fills every per-warp field except the register file, which
// the caller provides (owned and pooled for standalone runs, a view into
// the block-wide file for BlockRun warps).
func (e *Executor) initWarpRun(r *WarpRun, wp WarpParams, mem Memory, hooks Hooks) {
	nl := len(wp.Lanes)
	r.exec = e
	r.wp = wp
	r.mem = mem
	r.hooks = hooks
	r.cost, _ = hooks.(CostHooks)
	r.nl = nl
	r.fullMask = ^uint32(0) >> (WarpWidth - uint(nl))
	r.resume = -1
	r.st = Stats{}
	r.done = false
	r.pendingErr = nil
	r.stack = append(r.stack[:0], simtEntry{pc: 0, rpc: -1, mask: r.fullMask})

	// Per-lane special vectors.
	for l := range wp.Lanes {
		li := &wp.Lanes[l]
		r.laneVecs[lvTidX][l] = int64(li.Tid[0])
		r.laneVecs[lvTidY][l] = int64(li.Tid[1])
		r.laneVecs[lvTidZ][l] = int64(li.Tid[2])
		r.laneVecs[lvLane][l] = int64(l)
		r.laneVecs[lvGID][l] = int64(li.GlobalID)
	}
	// Warp-uniform specials, resolved to immediates. Resolution errors
	// (missing kernel argument) are attached to the slot and surface only
	// if the reading instruction executes.
	r.uniVals = r.uniVals[:0]
	r.uniErrs = r.uniErrs[:0]
	for _, sel := range e.uniSels {
		v, err := uniformSpecial(sel, &r.wp)
		r.uniVals = append(r.uniVals, v)
		r.uniErrs = append(r.uniErrs, err)
	}

	r.direct = false
	r.dGlobal, r.dConst, r.dShared, r.dLocal = nil, nil, nil, nil
	if dm, ok := mem.(DirectMemory); ok {
		d := dm.Direct()
		r.direct = true
		r.dGlobal, r.dConst, r.dShared, r.dLocal = d.Global, d.Constant, d.Shared, d.Local
	}
}

// Done reports whether the warp has retired.
func (r *WarpRun) Done() bool { return r.done }

// Stats returns the accumulated execution statistics.
func (r *WarpRun) Stats() Stats { return r.st }

// Release returns the run's pooled state for reuse. The run must not be
// used afterwards.
func (r *WarpRun) Release() {
	r.exec = nil
	r.mem = nil
	r.hooks = nil
	r.cost = nil
	r.wp = WarpParams{}
	r.dGlobal, r.dConst, r.dShared, r.dLocal = nil, nil, nil, nil
	for i := range r.uniErrs {
		r.uniErrs[i] = nil
	}
	warpRunPool.Put(r)
}

// vec returns the 32-lane register vector at a decoded register offset.
func (r *WarpRun) vec(off int32) *[WarpWidth]int64 {
	return (*[WarpWidth]int64)(r.regs[int(off)*r.rsN+r.rsB:])
}

// errParamRange matches the diagnostic of a per-lane parameter read.
func errParamRange(i, provided int) error {
	return fmt.Errorf("param %d out of range (%d provided)", i, provided)
}

// errUnknownSpecial matches the diagnostic of a per-lane special read.
func errUnknownSpecial(sel int64) error {
	return fmt.Errorf("unknown special register %d", sel)
}

// alu evaluates one binary ALU or comparison opcode. The interpreter
// inlines these per class (see interp.go); alu is the reference
// single-value semantics, used by tests and kept in sync with the lane
// loops.
func alu(op isa.Op, a, b int64) (int64, error) {
	switch op {
	case isa.OpAdd:
		return a + b, nil
	case isa.OpSub:
		return a - b, nil
	case isa.OpMul:
		return a * b, nil
	case isa.OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case isa.OpMod:
		if b == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return a % b, nil
	case isa.OpAnd:
		return a & b, nil
	case isa.OpOr:
		return a | b, nil
	case isa.OpXor:
		return a ^ b, nil
	case isa.OpShl:
		return a << (uint64(b) & 63), nil
	case isa.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case isa.OpSar:
		return a >> (uint64(b) & 63), nil
	case isa.OpMin:
		if a < b {
			return a, nil
		}
		return b, nil
	case isa.OpMax:
		if a > b {
			return a, nil
		}
		return b, nil
	case isa.OpCmpEQ:
		return b2i(a == b), nil
	case isa.OpCmpNE:
		return b2i(a != b), nil
	case isa.OpCmpLT:
		return b2i(a < b), nil
	case isa.OpCmpLE:
		return b2i(a <= b), nil
	case isa.OpCmpGT:
		return b2i(a > b), nil
	case isa.OpCmpGE:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("unknown opcode %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
