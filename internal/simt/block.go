package simt

// Block-batched execution. A BlockRun owns every warp of one thread
// block: a single [slot][warp][lane] register file (each warp views its
// 32-lane window through WarpRun.vec's stride fields) and one of two
// drivers:
//
//   - lockstep: while every warp of the block sits at the same program
//     position with a full active mask, each decoded uop executes across
//     ALL resident warps before the next uop — for pure ALU classes as
//     one loop over the contiguous nW×32-lane slot row, so dispatch and
//     uop decode cost amortize over the whole block, and __syncthreads
//     barriers cost nothing (no stack walk, no Resume round trip);
//   - rounds: the per-warp WarpRun.Resume path, byte-identical to the
//     pre-batching interpreter, advancing every live warp to its next
//     barrier (or retirement) per round.
//
// Lockstep is entered only when it is provably unobservable: the kernel
// passed decode's lockstepSafety analysis (no warp's load can see
// another warp's store within a launch), every warp is full-width, and
// no warp carries hooks (hook event order encodes the rounds schedule).
// The moment anything falls outside the proven envelope — divergence
// inside a warp, warps branching different ways, an unsupported or
// erroring instruction — the block detranspose-free falls back to the
// rounds driver mid-flight: each warp's stack and resume index are set
// to exactly the state the rounds schedule would reach, so memory,
// stats, hook traces, and error strings stay byte-identical (fuzzed
// against the per-lane reference by FuzzInterpEquivalence's multi-warp
// mode).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"owl/internal/isa"
)

// blockBatch gates the lockstep driver process-wide. On by default;
// SetBlockBatch(false) is the CLI's -block-batch=off escape hatch for
// A/B comparing the two execution strategies.
var blockBatch atomic.Bool

func init() { blockBatch.Store(true) }

// SetBlockBatch enables or disables the block-lockstep fast path
// process-wide. Disabled, every block executes on the per-warp rounds
// driver. Results are identical either way; only speed differs.
func SetBlockBatch(on bool) { blockBatch.Store(on) }

// BlockBatchEnabled reports the current setting.
func BlockBatchEnabled() bool { return blockBatch.Load() }

// BlockRun executes all warps of one thread block against a shared
// block-wide register file. Create with NewBlockRun, drive with Run,
// recycle with Release.
type BlockRun struct {
	e        *Executor
	nW       int
	runs     []*WarpRun // owned by the BlockRun, recycled with it
	regs     []int64    // [slot][warp][lane] block register file
	lockstep bool
}

var blockRunPool = sync.Pool{New: func() any { return new(BlockRun) }}

// NewBlockRun prepares every warp of a thread block. wps, mems and hooks
// are parallel slices, one entry per warp; a nil hooks entry leaves that
// warp untraced. The lockstep driver engages only when the kernel is
// lockstep-safe, every warp is full-width, and no warp is traced.
func (e *Executor) NewBlockRun(wps []WarpParams, mems []Memory, hooks []Hooks) (*BlockRun, error) {
	nW := len(wps)
	if nW == 0 || len(mems) != nW || len(hooks) != nW {
		return nil, fmt.Errorf("simt: block of %d warps with %d memories, %d hooks",
			nW, len(mems), len(hooks))
	}
	lockstep := blockBatch.Load() && e.lockstepSafe && nW > 1
	for w := range wps {
		if err := checkWarpWidth(wps[w]); err != nil {
			return nil, err
		}
		if len(wps[w].Lanes) != WarpWidth || hooks[w] != nil {
			lockstep = false
		}
	}

	br := blockRunPool.Get().(*BlockRun)
	br.e = e
	br.nW = nW
	br.lockstep = lockstep
	for len(br.runs) < nW {
		br.runs = append(br.runs, new(WarpRun))
	}

	// One register file for the whole block, [slot][warp][lane]: slot s
	// occupies the contiguous row regs[s*nW*32 : (s+1)*nW*32], with warp
	// w's lanes at column w*32. Zeroing a must-init slot is one clear of
	// the whole row.
	n := e.numSlots * nW * WarpWidth
	if cap(br.regs) >= n {
		br.regs = br.regs[:n]
		if len(e.clearOffs)*2 >= e.numSlots {
			clear(br.regs)
		} else {
			for _, off := range e.clearOffs {
				row := int(off) * nW
				clear(br.regs[row : row+nW*WarpWidth])
			}
		}
	} else {
		br.regs = make([]int64, n)
	}

	for w := 0; w < nW; w++ {
		r := br.runs[w]
		e.initWarpRun(r, wps[w], mems[w], hooks[w])
		r.regs = br.regs
		r.rsN = nW
		r.rsB = w * WarpWidth
	}
	return br, nil
}

// Run drives the block to completion: lockstep while provably safe,
// rounds otherwise. onRetire (may be nil) fires once per warp as it
// retires, in the rounds schedule's order. The first error aborts the
// block, exactly as the rounds driver would surface it.
func (br *BlockRun) Run(onRetire func(w int)) error {
	runs := br.runs[:br.nW]
	if br.lockstep {
		fellBack, err := br.runLockstep(onRetire)
		if err != nil {
			return err
		}
		if !fellBack {
			return nil
		}
	}
	for {
		active := 0
		for w, r := range runs {
			if r.Done() {
				continue
			}
			active++
			if _, err := r.Resume(); err != nil {
				return err
			}
			if r.Done() && onRetire != nil {
				onRetire(w)
			}
		}
		if active == 0 {
			return nil
		}
	}
}

// WarpStats returns the accumulated statistics of warp w.
func (br *BlockRun) WarpStats(w int) Stats { return br.runs[w].st }

// Release recycles the block's state (register file included). The run
// must not be used afterwards.
func (br *BlockRun) Release() {
	for _, r := range br.runs[:br.nW] {
		r.exec = nil
		r.mem = nil
		r.hooks = nil
		r.cost = nil
		r.wp = WarpParams{}
		r.regs = nil
		r.dGlobal, r.dConst, r.dShared, r.dLocal = nil, nil, nil, nil
		for i := range r.uniErrs {
			r.uniErrs[i] = nil
		}
	}
	br.e = nil
	blockRunPool.Put(br)
}

// bail rewinds every warp onto the rounds driver at decoded index i of
// the current block (i == -1: block not yet entered). The warps' stacks
// are depth 1 by lockstep's construction, so this is exactly the state
// Resume's barrier-resume path expects.
func (br *BlockRun) bail(blockID, i int) {
	for _, r := range br.runs[:br.nW] {
		r.stack = r.stack[:1]
		r.stack[0] = simtEntry{pc: blockID, rpc: -1, mask: r.fullMask}
		r.resume = i
	}
	br.lockstep = false
}

// memFallback rewinds after warp w's memory instruction at index i
// errored: warps before w completed the instruction, w carries the
// error, warps after it have not reached it. The rounds driver then
// replays the schedule — earlier warps run ahead first, so an error they
// hit later still surfaces before w's, byte-identical to rounds-from-
// start under the lockstep-safety guarantee.
func (br *BlockRun) memFallback(blockID, i, w int, err error) {
	br.bail(blockID, i)
	for j := 0; j < w; j++ {
		br.runs[j].resume = i + 1
	}
	br.runs[w].resume = i + 1
	br.runs[w].pendingErr = err
}

// runLockstep executes whole blocks with every warp advancing together.
// Returns fellBack=true when the block switched to the rounds driver
// (state already rewound); false means every warp retired.
func (br *BlockRun) runLockstep(onRetire func(w int)) (fellBack bool, err error) {
	e := br.e
	nW := br.nW
	runs := br.runs[:nW]
	n32 := nW * WarpWidth
	regs := br.regs
	row := func(off int32) []int64 {
		s := int(off) * nW
		return regs[s : s+n32]
	}
	blockID := 0
	for {
		if runs[0].st.BlocksExecuted >= e.maxBlocks {
			// Let the rounds driver produce the canonical per-warp
			// infinite-loop error.
			br.bail(blockID, -1)
			return true, nil
		}
		for _, r := range runs {
			r.st.BlocksExecuted++
		}
		bp := &e.progs[blockID]
		ops := bp.ops

	opLoop:
		for i := range ops {
			u := &ops[i]
			inc := int64(u.icount) * WarpWidth
			switch u.class {
			case uNop, uBarrier:
				// Barriers are free in lockstep: every warp is at the
				// same position by construction, and a depth-1 stack
				// makes them legal exactly as Resume would check.

			case uConst:
				d, v := row(u.dst), u.imm
				for i := range d {
					d[i] = v
				}
			case uMov:
				copy(row(u.dst), row(u.a))
			case uNot:
				d, a := row(u.dst), row(u.a)
				for i := range d {
					d[i] = b2i(a[i] == 0)
				}
			case uSelect:
				d, a, b, c := row(u.dst), row(u.a), row(u.b), row(u.c)
				for i := range d {
					if a[i] != 0 {
						d[i] = b[i]
					} else {
						d[i] = c[i]
					}
				}

			case uSpecLane:
				for _, r := range runs {
					d, v := r.vec(u.dst), &r.laneVecs[u.lvec]
					copy(d[:], v[:])
				}
			case uSpecUni:
				for _, r := range runs {
					if r.uniErrs[u.a] != nil {
						// Rounds replays the read and surfaces the error
						// in warp-major order.
						br.bail(blockID, i)
						return true, nil
					}
				}
				for _, r := range runs {
					d, v := r.vec(u.dst), r.uniVals[u.a]
					for l := range d {
						d[l] = v
					}
				}

			case uShfl:
				for _, r := range runs {
					a := r.vec(u.a)
					copy(r.shfl[:], a[:])
					d, b := r.vec(u.dst), r.vec(u.b)
					for l := 0; l < WarpWidth; l++ {
						d[l] = r.shfl[uint64(b[l])%WarpWidth]
					}
				}

			case uLoad, uExtLoad:
				for w, r := range runs {
					r.st.Instructions += inc
					if r.direct {
						var backing []int64
						switch u.space {
						case isa.SpaceGlobal:
							backing = r.dGlobal
						case isa.SpaceConstant:
							backing = r.dConst
						case isa.SpaceShared:
							backing = r.dShared
						}
						if backing != nil {
							d, a := r.vec(u.dst), r.vec(u.a)
							sh, mv := uint64(0), int64(-1)
							if u.class == uExtLoad {
								sh, mv = uint64(u.b), u.imm2
							}
							imm, nb := u.imm, uint64(len(backing))
							ok := true
							for l := 0; l < WarpWidth; l++ {
								ad := int64(uint64(a[l])>>sh)&mv + imm
								if uint64(ad) >= nb {
									ok = false
									break
								}
								d[l] = backing[ad]
							}
							if ok {
								continue
							}
						}
					}
					if err := r.memLoad(u, blockID, r.fullMask, true, 0, WarpWidth); err != nil {
						br.memFallback(blockID, i, w, err)
						return true, nil
					}
				}
				continue opLoop
			case uStore:
				for w, r := range runs {
					r.st.Instructions += inc
					if r.direct {
						var backing []int64
						switch u.space {
						case isa.SpaceGlobal:
							backing = r.dGlobal
						case isa.SpaceShared:
							backing = r.dShared
						}
						if backing != nil {
							a, b := r.vec(u.a), r.vec(u.b)
							imm, nb := u.imm, uint64(len(backing))
							ok := true
							for l := 0; l < WarpWidth; l++ {
								ad := a[l] + imm
								if uint64(ad) >= nb {
									ok = false
									break
								}
								backing[ad] = b[l]
							}
							if ok {
								continue
							}
						}
					}
					if err := r.memStore(u, blockID, r.fullMask, true, 0, WarpWidth); err != nil {
						br.memFallback(blockID, i, w, err)
						return true, nil
					}
				}
				continue opLoop

			case uAdd:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] + b[i]
				}
			case uSub:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] - b[i]
				}
			case uMul:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] * b[i]
				}
			case uAnd:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] & b[i]
				}
			case uOr:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] | b[i]
				}
			case uXor:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] ^ b[i]
				}
			case uShl:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] << (uint64(b[i]) & 63)
				}
			case uShr:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = int64(uint64(a[i]) >> (uint64(b[i]) & 63))
				}
			case uSar:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = a[i] >> (uint64(b[i]) & 63)
				}
			case uMin:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = min(a[i], b[i])
				}
			case uMax:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = max(a[i], b[i])
				}

			case uCmpEQ:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = b2i(a[i] == b[i])
				}
			case uCmpNE:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = b2i(a[i] != b[i])
				}
			case uCmpLT:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = b2i(a[i] < b[i])
				}
			case uCmpLE:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = b2i(a[i] <= b[i])
				}
			case uCmpGT:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = b2i(a[i] > b[i])
				}
			case uCmpGE:
				d, a, b := row(u.dst), row(u.a), row(u.b)
				for i := range d {
					d[i] = b2i(a[i] >= b[i])
				}

			case uAddI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] + v
				}
			case uRSubI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = v - a[i]
				}
			case uMulI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] * v
				}
			case uDivI:
				if u.imm == 0 {
					br.bail(blockID, i)
					return true, nil
				}
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] / v
				}
			case uModI:
				if u.imm == 0 {
					br.bail(blockID, i)
					return true, nil
				}
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] % v
				}
			case uAndI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] & v
				}
			case uOrI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] | v
				}
			case uXorI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = a[i] ^ v
				}
			case uShlI:
				d, a := row(u.dst), row(u.a)
				sh := uint64(u.imm)
				for i := range d {
					d[i] = a[i] << sh
				}
			case uShrI:
				d, a := row(u.dst), row(u.a)
				sh := uint64(u.imm)
				for i := range d {
					d[i] = int64(uint64(a[i]) >> sh)
				}
			case uSarI:
				d, a := row(u.dst), row(u.a)
				sh := uint64(u.imm)
				for i := range d {
					d[i] = a[i] >> sh
				}
			case uMinI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = min(a[i], v)
				}
			case uMaxI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = max(a[i], v)
				}

			case uCmpEQI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = b2i(a[i] == v)
				}
			case uCmpNEI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = b2i(a[i] != v)
				}
			case uCmpLTI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = b2i(a[i] < v)
				}
			case uCmpLEI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = b2i(a[i] <= v)
				}
			case uCmpGTI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = b2i(a[i] > v)
				}
			case uCmpGEI:
				d, a, v := row(u.dst), row(u.a), u.imm
				for i := range d {
					d[i] = b2i(a[i] >= v)
				}

			case uExtBI:
				d, a := row(u.dst), row(u.a)
				sh, mv := uint64(u.b), u.imm2
				for i := range d {
					d[i] = int64(uint64(a[i])>>sh) & mv
				}
			case uXor3:
				d, a, b, c := row(u.dst), row(u.a), row(u.b), row(u.c)
				for i := range d {
					d[i] = a[i] ^ b[i] ^ c[i]
				}
			case uAdd3:
				d, a, b, c := row(u.dst), row(u.a), row(u.b), row(u.c)
				for i := range d {
					d[i] = a[i] + b[i] + c[i]
				}

			default:
				// uDiv/uMod (per-lane divisor checks), uBad, anything new:
				// the rounds driver executes it with canonical semantics.
				br.bail(blockID, i)
				return true, nil
			}
			for _, r := range runs {
				r.st.Instructions += inc
			}
		}

		switch bp.term.Kind {
		case isa.TermJump:
			br.addTail(bp)
			blockID = bp.term.True
		case isa.TermRet:
			br.addTail(bp)
			for _, r := range runs {
				r.stack = r.stack[:0]
				r.done = true
			}
			if onRetire != nil {
				for w := range runs {
					onRetire(w)
				}
			}
			return false, nil
		case isa.TermBranch:
			// One pass per warp over the condition register (always
			// written, fused or not). Any divergence — inside a warp or
			// across warps — ends lockstep at the terminator: the rounds
			// driver re-reads the condition and handles the stack push.
			allTrue, allFalse := true, true
			for _, r := range runs {
				cv := r.vec(bp.condOff)
				var tk uint32
				for l := 0; l < WarpWidth; l++ {
					if cv[l] != 0 {
						tk |= 1 << uint(l)
					}
				}
				switch tk {
				case 0:
					allTrue = false
				case ^uint32(0):
					allFalse = false
				default:
					allTrue, allFalse = false, false
				}
				if !allTrue && !allFalse {
					break
				}
			}
			switch {
			case allTrue:
				br.addTail(bp)
				blockID = bp.term.True
			case allFalse:
				br.addTail(bp)
				blockID = bp.term.False
			default:
				// resume = len(ops): Resume's re-entry executes no ops,
				// adds the tail count itself, and runs the terminator on
				// its unfused path.
				br.bail(blockID, len(ops))
				return true, nil
			}
		}
	}
}

// addTail counts the elided instructions after a block's last retained
// op, at block completion, exactly as Resume does.
func (br *BlockRun) addTail(bp *blockProg) {
	if bp.tailCount != 0 {
		for _, r := range br.runs[:br.nW] {
			r.st.Instructions += int64(bp.tailCount) * WarpWidth
		}
	}
}
