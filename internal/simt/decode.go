package simt

// Decode-once lowering. NewExecutor pre-lowers every basic block of the
// kernel into a compact internal program so the interpreter's per-
// instruction work is a single switch on a dense class tag:
//
//   - register operands become precomputed offsets into the SoA register
//     file (reg*WarpWidth), so the inner lane loops index with one add;
//   - memory instructions carry their memory-instruction index (the
//     hook's memIdx) instead of looking it up per execution;
//   - special-register reads split into per-lane vectors (tid, laneid,
//     global tid — precomputed once per warp) and warp-uniform slots
//     (ctaid, ntid, nctaid, warpid, kernel parameters — resolved to
//     immediates at warp setup);
//   - a trailing comparison whose destination is the block's branch
//     condition is tagged for fusion: the compare records the taken mask
//     as it executes, so the terminator needs no second pass over the
//     condition register (the register is still written, in case a later
//     block reads it);
//   - each branch block carries its immediate post-dominator, the SIMT
//     reconvergence point, so divergence handling does no graph lookup.
//
// Lowering happens once per Executor; the lowered form is immutable and
// shared by every warp of every launch of the kernel.

import "owl/internal/isa"

// uopClass is the dense dispatch tag of a lowered instruction. ALU and
// comparison opcodes each get their own class so the interpreter's switch
// lands directly in a lane loop with the operation inlined.
type uopClass uint8

const (
	uBad uopClass = iota // validation should make this unreachable
	uNop
	uBarrier
	uConst
	uMov
	uNot
	uSelect
	uLoad
	uStore
	uSpecLane // per-lane special: copy of a precomputed lane vector
	uSpecUni  // warp-uniform special: broadcast of a per-warp immediate
	uShfl
	uAdd
	uSub
	uMul
	uDiv
	uMod
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSar
	uMin
	uMax
	uCmpEQ
	uCmpNE
	uCmpLT
	uCmpLE
	uCmpGT
	uCmpGE
)

// aluUclass maps binary-ALU and comparison opcodes to their dedicated
// dispatch tags.
var aluUclass = map[isa.Op]uopClass{
	isa.OpAdd:   uAdd,
	isa.OpSub:   uSub,
	isa.OpMul:   uMul,
	isa.OpDiv:   uDiv,
	isa.OpMod:   uMod,
	isa.OpAnd:   uAnd,
	isa.OpOr:    uOr,
	isa.OpXor:   uXor,
	isa.OpShl:   uShl,
	isa.OpShr:   uShr,
	isa.OpSar:   uSar,
	isa.OpMin:   uMin,
	isa.OpMax:   uMax,
	isa.OpCmpEQ: uCmpEQ,
	isa.OpCmpNE: uCmpNE,
	isa.OpCmpLT: uCmpLT,
	isa.OpCmpLE: uCmpLE,
	isa.OpCmpGT: uCmpGT,
	isa.OpCmpGE: uCmpGE,
}

// Indices of the per-lane special vectors precomputed at warp setup.
const (
	lvTidX = iota
	lvTidY
	lvTidZ
	lvLane
	lvGID
	numLaneVecs
)

// uop is one lowered instruction.
type uop struct {
	class uopClass
	lvec  uint8     // uSpecLane: lane-vector index
	space isa.Space // uLoad/uStore
	dst   int32     // register-file offsets: register * WarpWidth
	a     int32     // (uSpecUni reuses a as the uniform-slot index)
	b     int32
	c     int32
	imm   int64
	memIdx int32 // uLoad/uStore: index among the block's memory instructions
	ci     int32 // original code index, for error attribution
}

// blockProg is one lowered basic block.
type blockProg struct {
	ops   []uop
	term  isa.Terminator
	ipdom int  // reconvergence block for a divergent branch
	fused bool // last op is a comparison writing term.Cond
}

// lower decodes every block of the executor's kernel. The kernel has
// already been validated by cfg.New.
func (e *Executor) lower() {
	k := e.kernel
	uniSlots := make(map[int64]int32)
	e.progs = make([]blockProg, len(k.Blocks))
	for bi, b := range k.Blocks {
		bp := &e.progs[bi]
		bp.term = b.Term
		bp.ipdom = -1
		if b.Term.Kind == isa.TermBranch {
			bp.ipdom = e.graph.IPostDom(bi)
		}
		bp.ops = make([]uop, len(b.Code))
		nMem := int32(0)
		for ci := range b.Code {
			in := &b.Code[ci]
			u := &bp.ops[ci]
			u.ci = int32(ci)
			u.dst = int32(in.Dst) * WarpWidth
			u.a = int32(in.A) * WarpWidth
			u.b = int32(in.B) * WarpWidth
			u.c = int32(in.C) * WarpWidth
			u.imm = in.Imm
			u.space = in.Space
			u.memIdx = -1
			switch in.Op.Class() {
			case isa.ClassNop:
				u.class = uNop
			case isa.ClassBarrier:
				u.class = uBarrier
			case isa.ClassConst:
				u.class = uConst
			case isa.ClassMove:
				u.class = uMov
			case isa.ClassUnary:
				u.class = uNot
			case isa.ClassSelect:
				u.class = uSelect
			case isa.ClassMem:
				if in.Op == isa.OpStore {
					u.class = uStore
				} else {
					u.class = uLoad
				}
				u.memIdx = nMem
				nMem++
			case isa.ClassSpecial:
				if lv, perLane := laneVecFor(in.Imm); perLane {
					u.class = uSpecLane
					u.lvec = lv
				} else {
					u.class = uSpecUni
					slot, ok := uniSlots[in.Imm]
					if !ok {
						slot = int32(len(e.uniSels))
						uniSlots[in.Imm] = slot
						e.uniSels = append(e.uniSels, in.Imm)
					}
					u.a = slot
				}
			case isa.ClassShfl:
				u.class = uShfl
			default:
				if cls, ok := aluUclass[in.Op]; ok {
					u.class = cls
				} else {
					u.class = uBad
				}
			}
		}
		// Fuse a trailing comparison into the branch terminator: when the
		// compare's destination is the branch condition, the compare's lane
		// loop records the taken mask directly and the terminator skips its
		// pass over the condition register.
		if n := len(bp.ops); n > 0 && b.Term.Kind == isa.TermBranch {
			last := &bp.ops[n-1]
			if last.class >= uCmpEQ && last.class <= uCmpGE && b.Code[n-1].Dst == b.Term.Cond {
				bp.fused = true
			}
		}
	}
}

// laneVecFor maps a special-register selector to its per-lane vector, or
// reports false for warp-uniform selectors.
func laneVecFor(sel int64) (uint8, bool) {
	switch sel {
	case isa.SpecTidX:
		return lvTidX, true
	case isa.SpecTidY:
		return lvTidY, true
	case isa.SpecTidZ:
		return lvTidZ, true
	case isa.SpecLaneID:
		return lvLane, true
	case isa.SpecGlobalTid:
		return lvGID, true
	}
	return 0, false
}

// uniformSpecial resolves a warp-uniform special-register selector. An
// error is attached to the slot and surfaces only if the instruction
// actually executes, preserving the lazy semantics of per-lane reads.
func uniformSpecial(sel int64, wp *WarpParams) (int64, error) {
	switch sel {
	case isa.SpecCtaidX:
		return int64(wp.BlockIdx[0]), nil
	case isa.SpecCtaidY:
		return int64(wp.BlockIdx[1]), nil
	case isa.SpecCtaidZ:
		return int64(wp.BlockIdx[2]), nil
	case isa.SpecNtidX:
		return int64(wp.BlockDim[0]), nil
	case isa.SpecNtidY:
		return int64(wp.BlockDim[1]), nil
	case isa.SpecNtidZ:
		return int64(wp.BlockDim[2]), nil
	case isa.SpecNctaidX:
		return int64(wp.GridDim[0]), nil
	case isa.SpecNctaidY:
		return int64(wp.GridDim[1]), nil
	case isa.SpecNctaidZ:
		return int64(wp.GridDim[2]), nil
	case isa.SpecWarpID:
		return int64(wp.WarpID), nil
	}
	if sel >= isa.SpecParamBase {
		i := int(sel - isa.SpecParamBase)
		if i >= len(wp.Params) {
			return 0, errParamRange(i, len(wp.Params))
		}
		return wp.Params[i], nil
	}
	return 0, errUnknownSpecial(sel)
}
