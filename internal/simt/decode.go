package simt

// Decode-once lowering. NewExecutor pre-lowers every basic block of the
// kernel into a compact internal program so the interpreter's per-
// instruction work is a single switch on a dense class tag:
//
//   - register operands become precomputed offsets into the SoA register
//     file (slot*WarpWidth), so the inner lane loops index with one add;
//   - memory instructions carry their memory-instruction index (the
//     hook's memIdx) instead of looking it up per execution;
//   - special-register reads split into per-lane vectors (tid, laneid,
//     global tid — precomputed once per warp) and warp-uniform slots
//     (ctaid, ntid, nctaid, warpid, kernel parameters — resolved to
//     immediates at warp setup);
//   - a trailing comparison whose destination is the block's branch
//     condition is tagged for fusion: the compare records the taken mask
//     as it executes, so the terminator needs no second pass over the
//     condition register (the register is still written, in case a later
//     block reads it);
//   - each branch block carries its immediate post-dominator, the SIMT
//     reconvergence point, so divergence handling does no graph lookup.
//
// On top of the structural lowering, decode runs an optimization pipeline
// whose output is observably identical to executing the original code
// (hook traces, memory effects, statistics, and error strings all
// included — the equivalence is fuzz-checked against the per-lane
// reference in ref_test.go):
//
//   - constant propagation: registers written exactly once, by OpConst,
//     are known in every block their definition dominates; within a
//     block, constants additionally propagate in scan order. ALU ops
//     with one known operand lower to immediate-form classes (uAddI,
//     uAndI, ...), ops with both known fold to uConst. Trapping ops
//     (div/mod by a known zero) are never folded so the runtime error
//     and its lane attribution survive.
//   - address affinity: chains of "base + const" adds feeding loads and
//     stores fold into the memory op's displacement, so a t-table lookup
//     is one uLoad instead of add+add+load.
//   - dead-op elision: side-effect-free ops whose destination is never
//     read are dropped. Each retained op carries icount — 1 plus the
//     number of elided ops immediately preceding it — and each block
//     carries tailCount for elided ops after the last retained op, so
//     Stats.Instructions stays exactly what the unoptimized program
//     would report at every prefix, including error exits. Ops that can
//     trap (div/mod, loads, stores, uniform specials) are never elided.
//   - register renumbering: surviving registers are packed into a dense
//     slot space, shrinking the register file the interpreter must clear
//     per warp (kernels built with throwaway constant registers drop to
//     a fraction of their declared NumRegs).
//
// Lowering also decides lockstepSafe: whether a whole thread block may
// execute uop-by-uop across its warps (see block.go). Reordering warp
// execution at uop granularity is observably identical to the serial
// rounds schedule only when cross-warp-visible memory cannot carry
// information between warps mid-block: for each of the global and shared
// spaces the kernel must either never store to it, or store through a
// single non-re-executable instruction with no loads from that space.
//
// Lowering happens once per Executor; the lowered form is immutable and
// shared by every warp of every launch of the kernel.

import (
	"owl/internal/cfg"
	"owl/internal/isa"
)

// uopClass is the dense dispatch tag of a lowered instruction. ALU and
// comparison opcodes each get their own class so the interpreter's switch
// lands directly in a lane loop with the operation inlined; immediate
// forms (one operand folded to a constant) get separate classes so the
// loop body carries no operand-kind test.
type uopClass uint8

const (
	uBad uopClass = iota // validation should make this unreachable
	uNop
	uBarrier
	uConst
	uMov
	uNot
	uSelect
	uLoad
	uStore
	uSpecLane // per-lane special: copy of a precomputed lane vector
	uSpecUni  // warp-uniform special: broadcast of a per-warp immediate
	uShfl
	uAdd
	uSub
	uMul
	uDiv
	uMod
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSar
	uMin
	uMax
	uCmpEQ
	uCmpNE
	uCmpLT
	uCmpLE
	uCmpGT
	uCmpGE
	// Immediate forms: dst = a <op> imm (uRSubI is imm - a).
	uAddI
	uRSubI
	uMulI
	uDivI
	uModI
	uAndI
	uOrI
	uXorI
	uShlI
	uShrI
	uSarI
	uMinI
	uMaxI
	uCmpEQI
	uCmpNEI
	uCmpLTI
	uCmpLEI
	uCmpGTI
	uCmpGEI
	// Fused forms, produced by the peephole pass: single-use value chains
	// collapse into one dispatch. b carries the shift count and imm2 the
	// mask for the extract forms; imm stays the load displacement.
	uExtBI   // dst = (a >>u sh) & m
	uExtLoad // dst = mem[space][((a >>u sh) & m) + imm]
	uXor3    // dst = a ^ b ^ c
	uAdd3    // dst = a + b + c
)

// aluUclass maps binary-ALU and comparison opcodes to their dedicated
// register-form dispatch tags.
var aluUclass = map[isa.Op]uopClass{
	isa.OpAdd:   uAdd,
	isa.OpSub:   uSub,
	isa.OpMul:   uMul,
	isa.OpDiv:   uDiv,
	isa.OpMod:   uMod,
	isa.OpAnd:   uAnd,
	isa.OpOr:    uOr,
	isa.OpXor:   uXor,
	isa.OpShl:   uShl,
	isa.OpShr:   uShr,
	isa.OpSar:   uSar,
	isa.OpMin:   uMin,
	isa.OpMax:   uMax,
	isa.OpCmpEQ: uCmpEQ,
	isa.OpCmpNE: uCmpNE,
	isa.OpCmpLT: uCmpLT,
	isa.OpCmpLE: uCmpLE,
	isa.OpCmpGT: uCmpGT,
	isa.OpCmpGE: uCmpGE,
}

// Indices of the per-lane special vectors precomputed at warp setup.
const (
	lvTidX = iota
	lvTidY
	lvTidZ
	lvLane
	lvGID
	numLaneVecs
)

// uop is one lowered instruction. Register fields hold precomputed
// offsets into the SoA register file (slot * WarpWidth) — slots are the
// renumbered register space, not original register ids.
type uop struct {
	class  uopClass
	lvec   uint8     // uSpecLane: lane-vector index
	space  isa.Space // uLoad/uStore
	icount int32     // instructions this op accounts for (1 + elided before it)
	dst    int32
	a      int32 // (uSpecUni reuses a as the uniform-slot index)
	b      int32 // (uExtBI/uExtLoad reuse b as the shift count)
	c      int32
	imm    int64
	imm2   int64 // uExtBI/uExtLoad: extract mask
	memIdx int32 // uLoad/uStore: index among the block's memory instructions
	ci     int32 // original code index, for error attribution
	writes bool  // op writes dst — fires CostHooks.OnRegWrite when collecting
}

// blockProg is one lowered basic block.
type blockProg struct {
	ops       []uop
	term      isa.Terminator
	ipdom     int   // reconvergence block for a divergent branch
	fused     bool  // last op is a comparison writing term.Cond
	condOff   int32 // renumbered register-file offset of term.Cond
	tailCount int32 // elided instructions after the last retained op
}

// protoOp is the lowering intermediate: like uop but with register ids
// instead of renumbered file offsets, plus the elision mark.
type protoOp struct {
	class  uopClass
	lvec   uint8
	space  isa.Space
	dst    isa.Reg
	a      isa.Reg
	b      isa.Reg
	c      isa.Reg
	slot   int32 // uSpecUni uniform-slot index; uExtBI/uExtLoad shift count
	imm    int64
	imm2   int64 // uExtBI/uExtLoad extract mask
	memIdx int32
	ci     int32
	elided bool
}

// protoReads invokes f for every register the op reads.
func (p *protoOp) protoReads(f func(isa.Reg)) {
	switch p.class {
	case uMov, uNot:
		f(p.a)
	case uSelect:
		f(p.a)
		f(p.b)
		f(p.c)
	case uLoad, uExtBI, uExtLoad:
		f(p.a)
	case uStore, uShfl:
		f(p.a)
		f(p.b)
	case uXor3, uAdd3:
		f(p.a)
		f(p.b)
		f(p.c)
	default:
		switch {
		case p.class >= uAdd && p.class <= uCmpGE:
			f(p.a)
			f(p.b)
		case p.class >= uAddI && p.class <= uCmpGEI:
			f(p.a)
		}
	}
}

// writesDst reports whether the op writes its destination register.
func (p *protoOp) writesDst() bool {
	switch p.class {
	case uNop, uBarrier, uStore, uBad:
		return false
	}
	return true
}

// elidable reports whether the op may be dropped when its destination is
// never read: it must be free of side effects AND free of runtime traps
// (div/mod can divide by zero, loads/stores can fault or fire hooks,
// uniform specials can carry a deferred parameter error, uBad traps).
func (p *protoOp) elidable() bool {
	switch p.class {
	case uNop, uConst, uMov, uNot, uSelect, uSpecLane, uShfl,
		uAdd, uSub, uMul, uAnd, uOr, uXor, uShl, uShr, uSar, uMin, uMax,
		uCmpEQ, uCmpNE, uCmpLT, uCmpLE, uCmpGT, uCmpGE,
		uAddI, uRSubI, uMulI, uAndI, uOrI, uXorI, uShlI, uShrI, uSarI,
		uMinI, uMaxI,
		uCmpEQI, uCmpNEI, uCmpLTI, uCmpLEI, uCmpGTI, uCmpGEI,
		uExtBI, uXor3, uAdd3:
		return true
	}
	return false
}

// knownVal is the constant-propagation lattice value of one register.
type knownVal struct {
	v  int64
	ok bool
}

// affineVal records dst = root + off, for folding add-chains into memory
// displacements. Valid only while neither dst nor root is rewritten, and
// only within one block.
type affineVal struct {
	root isa.Reg
	off  int64
	ok   bool
}

// lower decodes every block of the executor's kernel. The kernel has
// already been validated by cfg.New.
func (e *Executor) lower() {
	k := e.kernel
	nb := len(k.Blocks)

	// --- Global analysis -------------------------------------------------

	// Registers written exactly once, by OpConst: known in every block
	// their defining block strictly dominates.
	writeCount := make([]int, k.NumRegs)
	constDef := make([]struct {
		block int
		imm   int64
		isC   bool
	}, k.NumRegs)
	for bi, b := range k.Blocks {
		for ci := range b.Code {
			in := &b.Code[ci]
			if writesReg(in.Op) {
				writeCount[in.Dst]++
				if in.Op == isa.OpConst {
					constDef[in.Dst] = struct {
						block int
						imm   int64
						isC   bool
					}{bi, in.Imm, true}
				}
			}
		}
	}
	globalConst := func(r isa.Reg) (int, int64, bool) {
		if writeCount[r] == 1 && constDef[r].isC {
			return constDef[r].block, constDef[r].imm, true
		}
		return 0, 0, false
	}

	dom := computeDominators(nb, e.graph)
	cyclic := computeCyclic(nb, e.graph)
	e.lockstepSafe = lockstepSafety(k, cyclic)

	// --- Per-block lowering with constant/affine propagation ------------

	kn := make([]knownVal, k.NumRegs)
	af := make([]affineVal, k.NumRegs)
	protos := make([][]protoOp, nb)
	uniSlots := make(map[int64]int32)

	for bi, b := range k.Blocks {
		// Seed constants from strictly-dominating single-const defs; a def
		// in this very block becomes known only once scanned (a use above
		// it may execute on a first loop entry before the def ever ran).
		for r := range kn {
			kn[r] = knownVal{}
			af[r] = affineVal{}
			if db, imm, ok := globalConst(isa.Reg(r)); ok && db != bi && dom.dominates(db, bi) {
				kn[r] = knownVal{v: imm, ok: true}
			}
		}

		resolve := func(r isa.Reg) (isa.Reg, int64) {
			if af[r].ok {
				return af[r].root, af[r].off
			}
			return r, 0
		}
		setWritten := func(d isa.Reg) {
			kn[d] = knownVal{}
			af[d] = affineVal{}
			for i := range af {
				if af[i].ok && af[i].root == d {
					af[i] = affineVal{}
				}
			}
		}

		out := protos[bi][:0]
		nMem := int32(0)
		for ci := range b.Code {
			in := &b.Code[ci]
			p := protoOp{
				dst: in.Dst, a: in.A, b: in.B, c: in.C,
				imm: in.Imm, space: in.Space, memIdx: -1, ci: int32(ci),
			}
			// emitConst lowers the op to a known-constant write of d.
			emitConst := func(d isa.Reg, v int64) {
				p.class = uConst
				p.dst, p.imm = d, v
				setWritten(d)
				kn[d] = knownVal{v: v, ok: true}
				out = append(out, p)
			}
			// emitMovLike lowers d = src, propagating known/affine state.
			emitMovLike := func(d, src isa.Reg) {
				if kn[src].ok {
					emitConst(d, kn[src].v)
					return
				}
				root, off := resolve(src)
				p.class = uMov
				p.dst, p.a = d, src
				setWritten(d)
				if root != d {
					af[d] = affineVal{root: root, off: off, ok: true}
				}
				out = append(out, p)
			}

			switch in.Op {
			case isa.OpNop:
				p.class = uNop
				out = append(out, p)
			case isa.OpBarrier:
				p.class = uBarrier
				out = append(out, p)
			case isa.OpConst:
				emitConst(in.Dst, in.Imm)
			case isa.OpMov:
				emitMovLike(in.Dst, in.A)
			case isa.OpNot:
				if kn[in.A].ok {
					emitConst(in.Dst, b2i(kn[in.A].v == 0))
					break
				}
				p.class = uNot
				setWritten(in.Dst)
				out = append(out, p)
			case isa.OpSelect:
				if kn[in.A].ok {
					if kn[in.A].v != 0 {
						emitMovLike(in.Dst, in.B)
					} else {
						emitMovLike(in.Dst, in.C)
					}
					break
				}
				p.class = uSelect
				setWritten(in.Dst)
				out = append(out, p)
			case isa.OpLoad, isa.OpStore:
				root, off := resolve(in.A)
				p.a, p.imm = root, in.Imm+off
				p.memIdx = nMem
				nMem++
				if in.Op == isa.OpStore {
					p.class = uStore
				} else {
					p.class = uLoad
					setWritten(in.Dst)
				}
				out = append(out, p)
			case isa.OpSpecial:
				if lv, perLane := laneVecFor(in.Imm); perLane {
					p.class = uSpecLane
					p.lvec = lv
				} else {
					p.class = uSpecUni
					slot, ok := uniSlots[in.Imm]
					if !ok {
						slot = int32(len(e.uniSels))
						uniSlots[in.Imm] = slot
						e.uniSels = append(e.uniSels, in.Imm)
					}
					p.slot = slot
				}
				setWritten(in.Dst)
				out = append(out, p)
			case isa.OpShfl:
				p.class = uShfl
				setWritten(in.Dst)
				out = append(out, p)
			default:
				cls, ok := aluUclass[in.Op]
				if !ok {
					p.class = uBad
					p.imm = int64(in.Op) // preserved for the runtime diagnostic
					out = append(out, p)
					break
				}
				ka, kb := kn[in.A], kn[in.B]
				trapDiv := (in.Op == isa.OpDiv || in.Op == isa.OpMod) && kb.ok && kb.v == 0
				if ka.ok && kb.ok && !trapDiv {
					v, err := alu(in.Op, ka.v, kb.v)
					if err == nil {
						emitConst(in.Dst, v)
						break
					}
				}
				p.class, p.imm = immForm(in.Op, cls, in.A, in.B, ka, kb)
				if p.class >= uAddI && p.class <= uCmpGEI {
					// Immediate forms are unary on a: pick the register
					// operand (commuted classes read B).
					if kb.ok && p.class != uRSubI {
						p.a = in.A
					} else {
						p.a = in.B
					}
					// Fold add-chains through the affine map so later
					// loads/stores absorb the whole displacement.
					if p.class == uAddI {
						root, off := resolve(p.a)
						p.a, p.imm = root, p.imm+off
					}
					if p.class == uRSubI {
						root, off := resolve(p.a)
						p.a, p.imm = root, p.imm-off
					}
				}
				setWritten(in.Dst)
				if p.class == uAddI && p.a != in.Dst {
					af[in.Dst] = affineVal{root: p.a, off: p.imm, ok: true}
				}
				out = append(out, p)
			}
		}
		protos[bi] = out
	}

	// --- Dead-op elision -------------------------------------------------

	readCount := make([]int, k.NumRegs)
	for bi := range protos {
		for i := range protos[bi] {
			protos[bi][i].protoReads(func(r isa.Reg) { readCount[r]++ })
		}
		if k.Blocks[bi].Term.Kind == isa.TermBranch {
			readCount[k.Blocks[bi].Term.Cond]++
		}
	}
	elide := func() {
		for changed := true; changed; {
			changed = false
			for bi := range protos {
				for i := range protos[bi] {
					p := &protos[bi][i]
					if p.elided || !p.elidable() {
						continue
					}
					if p.class == uNop || readCount[p.dst] == 0 {
						p.elided = true
						changed = true
						p.protoReads(func(r isa.Reg) { readCount[r]-- })
					}
				}
			}
		}
	}
	elide()

	// --- Peephole fusion -------------------------------------------------
	//
	// Collapse single-use producer→consumer chains between consecutive
	// retained ops into one fused dispatch. The producer must be trap-free
	// and its destination read exactly once — by the consumer — so dropping
	// the intermediate register write is unobservable (registers are not
	// externally visible; memory, hooks, stats, and errors are, and all are
	// preserved: the consumer keeps its own ci for error attribution, and
	// the producer's instruction count flows into the consumer's icount via
	// the elision accounting).
	fuseBlocks(protos, readCount)
	elide()

	// --- Register renumbering -------------------------------------------

	slotOf := make([]int32, k.NumRegs)
	for i := range slotOf {
		slotOf[i] = -1
	}
	nSlots := int32(0)
	mark := func(r isa.Reg) {
		if slotOf[r] < 0 {
			slotOf[r] = nSlots
			nSlots++
		}
	}
	for bi := range protos {
		for i := range protos[bi] {
			p := &protos[bi][i]
			if p.elided {
				continue
			}
			p.protoReads(mark)
			if p.writesDst() {
				mark(p.dst)
			}
		}
		if k.Blocks[bi].Term.Kind == isa.TermBranch {
			mark(k.Blocks[bi].Term.Cond)
		}
	}
	e.numSlots = int(nSlots)

	// --- Initial-clear analysis ------------------------------------------
	//
	// A slot must be zeroed at warp start only if some read of it can
	// execute before any write. A read in block bR is covered by a write in
	// block bW when bW strictly dominates bR AND every divergent-branch
	// region containing bW also contains bR: leaving a region restores a
	// wider mask, so a write under the narrower divergent mask could leave
	// stale lanes that a post-reconvergence read would observe. Within one
	// block the mask is constant, so any earlier write covers. Shfl source
	// registers are read cross-lane (including retired lanes) and are never
	// provably initialized.
	e.clearOffs = computeClearOffs(k, e.graph, dom, protos, slotOf, int(nSlots))

	// --- Final emission: compaction, icount, fusion ---------------------

	e.progs = make([]blockProg, nb)
	for bi, b := range k.Blocks {
		bp := &e.progs[bi]
		bp.term = b.Term
		bp.ipdom = -1
		if b.Term.Kind == isa.TermBranch {
			bp.ipdom = e.graph.IPostDom(bi)
			bp.condOff = slotOf[b.Term.Cond] * WarpWidth
		}
		pending := int32(0)
		var lastOrigDst isa.Reg
		lastIsCmp := false
		for i := range protos[bi] {
			p := &protos[bi][i]
			if p.elided {
				pending++
				continue
			}
			u := uop{
				class: p.class, lvec: p.lvec, space: p.space,
				imm: p.imm, imm2: p.imm2, memIdx: p.memIdx, ci: p.ci,
			}
			u.icount = pending + 1
			if p.class == uBarrier {
				u.icount = pending // barriers are not counted as instructions
			}
			pending = 0
			off := func(r isa.Reg) int32 {
				if s := slotOf[r]; s >= 0 {
					return s * WarpWidth
				}
				return 0
			}
			if p.writesDst() {
				u.dst = off(p.dst)
				u.writes = true
			}
			switch p.class {
			case uSpecUni:
				u.a = p.slot
			case uExtBI, uExtLoad:
				u.a, u.b = off(p.a), p.slot // b is the shift count
			case uBad:
				// never executes registers; keep ci only
			default:
				u.a, u.b, u.c = off(p.a), off(p.b), off(p.c)
			}
			bp.ops = append(bp.ops, u)
			lastOrigDst = p.dst
			lastIsCmp = (p.class >= uCmpEQ && p.class <= uCmpGE) ||
				(p.class >= uCmpEQI && p.class <= uCmpGEI)
		}
		bp.tailCount = pending
		// Fuse a trailing comparison into the branch terminator: when the
		// compare's destination is the branch condition, the compare's lane
		// loop records the taken mask directly and the terminator skips its
		// pass over the condition register.
		if len(bp.ops) > 0 && b.Term.Kind == isa.TermBranch &&
			lastIsCmp && lastOrigDst == b.Term.Cond {
			bp.fused = true
		}
	}
}

// fuseBlocks runs the peephole pass over every block: for each pair of
// consecutive retained ops (p1, p2) where p2 consumes p1's destination as
// its only use, rewrite p2 into a fused class and elide p1. Matching
// re-examines the fused op, so shr→and→load chains collapse fully
// (uShrI+uAndI → uExtBI, uExtBI+uLoad → uExtLoad) and xor/add reduction
// trees halve (uXor+uXor → uXor3).
func fuseBlocks(protos [][]protoOp, readCount []int) {
	var ret []int
	for bi := range protos {
		ops := protos[bi]
		ret = ret[:0]
		for i := range ops {
			if !ops[i].elided {
				ret = append(ret, i)
			}
		}
		for j := 0; j+1 < len(ret); {
			p1 := &ops[ret[j]]
			p2 := &ops[ret[j+1]]
			if readCount[p1.dst] != 1 || !fusePair(p1, p2) {
				j++
				continue
			}
			// p1 folds into p2: its operand reads move into p2 (already
			// rewritten by fusePair), its destination is no longer read.
			p1.elided = true
			readCount[p1.dst]--
			ret = append(ret[:j], ret[j+1:]...)
			if j > 0 {
				j-- // the fused op may now chain with its predecessor
			}
		}
	}
}

// fusePair tries to rewrite p2 to absorb p1 (whose destination is read
// exactly once, by p2 if the operand positions match). Reports whether
// the rewrite happened.
func fusePair(p1, p2 *protoOp) bool {
	d := p1.dst
	switch {
	case p1.class == uShrI && p2.class == uAndI && p2.a == d:
		p2.class = uExtBI
		p2.a = p1.a
		p2.slot = int32(p1.imm)
		p2.imm2 = p2.imm
		p2.imm = 0
		return true
	case p1.class == uShrI && p2.class == uLoad && p2.a == d:
		p2.class = uExtLoad
		p2.a = p1.a
		p2.slot = int32(p1.imm)
		p2.imm2 = -1
		return true
	case p1.class == uAndI && p2.class == uLoad && p2.a == d:
		p2.class = uExtLoad
		p2.a = p1.a
		p2.slot = 0
		p2.imm2 = p1.imm
		return true
	case p1.class == uExtBI && p2.class == uLoad && p2.a == d:
		p2.class = uExtLoad
		p2.a = p1.a
		p2.slot = p1.slot
		p2.imm2 = p1.imm2
		return true
	case p1.class == uXor && p2.class == uXor && (p2.a == d) != (p2.b == d):
		other := p2.b
		if p2.b == d {
			other = p2.a
		}
		p2.class = uXor3
		p2.a, p2.b, p2.c = p1.a, p1.b, other
		return true
	case p1.class == uAdd && p2.class == uAdd && (p2.a == d) != (p2.b == d):
		other := p2.b
		if p2.b == d {
			other = p2.a
		}
		p2.class = uAdd3
		p2.a, p2.b, p2.c = p1.a, p1.b, other
		return true
	}
	return false
}

// computeClearOffs returns the register-file offsets (slot*WarpWidth) that
// NewWarpRun must zero before execution: the slots with at least one read
// that is not provably preceded by a write of the same (or wider) active
// mask on every path. See the call site in lower for the soundness rule.
func computeClearOffs(k *isa.Kernel, g *cfg.Graph, dom *domSets,
	protos [][]protoOp, slotOf []int32, nSlots int) []int32 {
	nb := len(k.Blocks)

	// Divergent-branch regions: region[b] carries one bit per branch whose
	// body (blocks strictly between the branch and its reconvergence point)
	// contains b.
	nBr := 0
	for _, b := range k.Blocks {
		if b.Term.Kind == isa.TermBranch {
			nBr++
		}
	}
	words := (nBr + 63) / 64
	if words == 0 {
		words = 1
	}
	region := make([]uint64, nb*words)
	seen := make([]bool, nb)
	var stack []int
	id := 0
	for bi, b := range k.Blocks {
		if b.Term.Kind != isa.TermBranch {
			continue
		}
		jp := g.IPostDom(bi)
		for i := range seen {
			seen[i] = false
		}
		stack = stack[:0]
		push := func(s int) {
			if s >= 0 && s < nb && s != jp && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for _, s := range g.Succs(bi) {
			push(s)
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			region[x*words+id/64] |= 1 << (id % 64)
			for _, s := range g.Succs(x) {
				push(s)
			}
		}
		id++
	}

	covered := func(bW, bR int) bool {
		if bW == bR || !dom.dominates(bW, bR) {
			return false
		}
		for w := 0; w < words; w++ {
			if region[bW*words+w]&^region[bR*words+w] != 0 {
				return false
			}
		}
		return true
	}

	needInit := make([]bool, nSlots)
	type regRead struct {
		r isa.Reg
		b int
	}
	var crossReads []regRead
	writeBlocksOf := make([][]int, k.NumRegs)
	written := make([]int, k.NumRegs) // bi+1 when written earlier in block bi
	for bi := range protos {
		read := func(r isa.Reg) {
			if written[r] != bi+1 {
				crossReads = append(crossReads, regRead{r, bi})
			}
		}
		for i := range protos[bi] {
			p := &protos[bi][i]
			if p.elided {
				continue
			}
			if p.class == uShfl {
				// Cross-lane source: reads all lanes, masked or not.
				if s := slotOf[p.a]; s >= 0 {
					needInit[s] = true
				}
				read(p.b)
			} else {
				p.protoReads(read)
			}
			if p.writesDst() {
				if wl := writeBlocksOf[p.dst]; len(wl) == 0 || wl[len(wl)-1] != bi {
					writeBlocksOf[p.dst] = append(wl, bi)
				}
				written[p.dst] = bi + 1
			}
		}
		if k.Blocks[bi].Term.Kind == isa.TermBranch {
			read(k.Blocks[bi].Term.Cond)
		}
	}
	for _, cr := range crossReads {
		s := slotOf[cr.r]
		if s < 0 || needInit[s] {
			continue
		}
		ok := false
		for _, bW := range writeBlocksOf[cr.r] {
			if covered(bW, cr.b) {
				ok = true
				break
			}
		}
		if !ok {
			needInit[s] = true
		}
	}

	var offs []int32
	for s := 0; s < nSlots; s++ {
		if needInit[s] {
			offs = append(offs, int32(s)*WarpWidth)
		}
	}
	return offs
}

// writesReg reports whether the opcode writes its Dst register.
func writesReg(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpBarrier, isa.OpStore:
		return false
	}
	return true
}

// immForm picks the immediate-form class for an ALU/compare op with one
// known operand, or returns the register-form class when neither operand
// (or only an unfoldable one) is known. The returned imm is the folded
// operand, pre-adjusted for classes that absorb it (uAddI for a-imm
// subtraction, pre-masked shift counts).
func immForm(op isa.Op, regClass uopClass, _, _ isa.Reg, ka, kb knownVal) (uopClass, int64) {
	if kb.ok {
		switch op {
		case isa.OpAdd:
			return uAddI, kb.v
		case isa.OpSub:
			return uAddI, -kb.v // two's complement: a - c == a + (-c), MinInt64 included
		case isa.OpMul:
			return uMulI, kb.v
		case isa.OpDiv:
			return uDivI, kb.v
		case isa.OpMod:
			return uModI, kb.v
		case isa.OpAnd:
			return uAndI, kb.v
		case isa.OpOr:
			return uOrI, kb.v
		case isa.OpXor:
			return uXorI, kb.v
		case isa.OpShl:
			return uShlI, int64(uint64(kb.v) & 63)
		case isa.OpShr:
			return uShrI, int64(uint64(kb.v) & 63)
		case isa.OpSar:
			return uSarI, int64(uint64(kb.v) & 63)
		case isa.OpMin:
			return uMinI, kb.v
		case isa.OpMax:
			return uMaxI, kb.v
		case isa.OpCmpEQ:
			return uCmpEQI, kb.v
		case isa.OpCmpNE:
			return uCmpNEI, kb.v
		case isa.OpCmpLT:
			return uCmpLTI, kb.v
		case isa.OpCmpLE:
			return uCmpLEI, kb.v
		case isa.OpCmpGT:
			return uCmpGTI, kb.v
		case isa.OpCmpGE:
			return uCmpGEI, kb.v
		}
	}
	if ka.ok {
		switch op {
		case isa.OpAdd:
			return uAddI, ka.v
		case isa.OpSub:
			return uRSubI, ka.v // imm - b
		case isa.OpMul:
			return uMulI, ka.v
		case isa.OpAnd:
			return uAndI, ka.v
		case isa.OpOr:
			return uOrI, ka.v
		case isa.OpXor:
			return uXorI, ka.v
		case isa.OpMin:
			return uMinI, ka.v
		case isa.OpMax:
			return uMaxI, ka.v
		// Comparisons commute by flipping the relation: imm < b == b > imm.
		case isa.OpCmpEQ:
			return uCmpEQI, ka.v
		case isa.OpCmpNE:
			return uCmpNEI, ka.v
		case isa.OpCmpLT:
			return uCmpGTI, ka.v
		case isa.OpCmpLE:
			return uCmpGEI, ka.v
		case isa.OpCmpGT:
			return uCmpLTI, ka.v
		case isa.OpCmpGE:
			return uCmpLEI, ka.v
		}
	}
	return regClass, 0
}

// domSets is a bitset-per-block dominator matrix.
type domSets struct {
	words int
	bits  []uint64
}

func (d *domSets) dominates(a, b int) bool {
	return d.bits[b*d.words+a/64]&(1<<uint(a%64)) != 0
}

// computeDominators runs the classic iterative forward-dominator data
// flow: dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds). Blocks
// unreachable from the entry keep the full set, which is harmless: the
// seeding below only consults blocks that execute.
func computeDominators(nb int, g interface{ Preds(int) []int }) *domSets {
	words := (nb + 63) / 64
	d := &domSets{words: words, bits: make([]uint64, nb*words)}
	row := func(b int) []uint64 { return d.bits[b*words : (b+1)*words] }
	for b := 1; b < nb; b++ {
		for w := range row(b) {
			row(b)[w] = ^uint64(0)
		}
	}
	row(0)[0] = 1
	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for b := 1; b < nb; b++ {
			for w := range tmp {
				tmp[w] = ^uint64(0)
			}
			for _, p := range g.Preds(b) {
				pr := row(p)
				for w := range tmp {
					tmp[w] &= pr[w]
				}
			}
			tmp[b/64] |= 1 << uint(b%64)
			rb := row(b)
			for w := range tmp {
				if rb[w] != tmp[w] {
					rb[w] = tmp[w]
					changed = true
				}
			}
		}
	}
	return d
}

// computeCyclic reports, per block, whether the block can reach itself —
// i.e. whether it may execute more than once per thread.
func computeCyclic(nb int, g interface{ Succs(int) []int }) []bool {
	cyclic := make([]bool, nb)
	seen := make([]bool, nb)
	stack := make([]int, 0, nb)
	for b := 0; b < nb; b++ {
		for i := range seen {
			seen[i] = false
		}
		stack = append(stack[:0], g.Succs(b)...)
		found := false
		for len(stack) > 0 && !found {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == b {
				found = true
				break
			}
			if n < 0 || n >= nb || seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, g.Succs(n)...)
		}
		cyclic[b] = found
	}
	return cyclic
}

// lockstepSafety decides whether warps of a block may execute this kernel
// uop-by-uop in lockstep (block.go). For each cross-warp-visible space
// (global, shared) the kernel must either never store to it, or store
// only through one static instruction that cannot re-execute, with no
// loads from that space — then no interleaving of warps at uop
// granularity can change any load result or the final memory image.
// Per-thread spaces (local) and read-only constant memory never gate.
func lockstepSafety(k *isa.Kernel, cyclic []bool) bool {
	type use struct {
		loads, stores int
		storeBlock    int
	}
	var global, shared use
	for bi, b := range k.Blocks {
		for ci := range b.Code {
			in := &b.Code[ci]
			if !in.IsMem() {
				continue
			}
			var u *use
			switch in.Space {
			case isa.SpaceGlobal:
				u = &global
			case isa.SpaceShared:
				u = &shared
			default:
				continue
			}
			if in.Op == isa.OpStore {
				u.stores++
				u.storeBlock = bi
			} else {
				u.loads++
			}
		}
	}
	safe := func(u use) bool {
		if u.stores == 0 {
			return true
		}
		return u.loads == 0 && u.stores == 1 && !cyclic[u.storeBlock]
	}
	return safe(global) && safe(shared)
}

// laneVecFor maps a special-register selector to its per-lane vector, or
// reports false for warp-uniform selectors.
func laneVecFor(sel int64) (uint8, bool) {
	switch sel {
	case isa.SpecTidX:
		return lvTidX, true
	case isa.SpecTidY:
		return lvTidY, true
	case isa.SpecTidZ:
		return lvTidZ, true
	case isa.SpecLaneID:
		return lvLane, true
	case isa.SpecGlobalTid:
		return lvGID, true
	}
	return 0, false
}

// uniformSpecial resolves a warp-uniform special-register selector. An
// error is attached to the slot and surfaces only if the instruction
// actually executes, preserving the lazy semantics of per-lane reads.
func uniformSpecial(sel int64, wp *WarpParams) (int64, error) {
	switch sel {
	case isa.SpecCtaidX:
		return int64(wp.BlockIdx[0]), nil
	case isa.SpecCtaidY:
		return int64(wp.BlockIdx[1]), nil
	case isa.SpecCtaidZ:
		return int64(wp.BlockIdx[2]), nil
	case isa.SpecNtidX:
		return int64(wp.BlockDim[0]), nil
	case isa.SpecNtidY:
		return int64(wp.BlockDim[1]), nil
	case isa.SpecNtidZ:
		return int64(wp.BlockDim[2]), nil
	case isa.SpecNctaidX:
		return int64(wp.GridDim[0]), nil
	case isa.SpecNctaidY:
		return int64(wp.GridDim[1]), nil
	case isa.SpecNctaidZ:
		return int64(wp.GridDim[2]), nil
	case isa.SpecWarpID:
		return int64(wp.WarpID), nil
	}
	if sel >= isa.SpecParamBase {
		i := int(sel - isa.SpecParamBase)
		if i >= len(wp.Params) {
			return 0, errParamRange(i, len(wp.Params))
		}
		return wp.Params[i], nil
	}
	return 0, errUnknownSpecial(sel)
}
