package simt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"owl/internal/isa"
	"owl/internal/kbuild"
)

// mapMem is a test memory: one flat map per space (locals keyed by lane).
type mapMem struct {
	global map[int64]int64
	shared map[int64]int64
	consts map[int64]int64
	local  map[[2]int64]int64
}

func newMapMem() *mapMem {
	return &mapMem{
		global: make(map[int64]int64),
		shared: make(map[int64]int64),
		consts: make(map[int64]int64),
		local:  make(map[[2]int64]int64),
	}
}

func (m *mapMem) Load(space isa.Space, lane int, addr int64) (int64, error) {
	switch space {
	case isa.SpaceGlobal:
		return m.global[addr], nil
	case isa.SpaceShared:
		return m.shared[addr], nil
	case isa.SpaceConstant:
		return m.consts[addr], nil
	case isa.SpaceLocal:
		return m.local[[2]int64{int64(lane), addr}], nil
	}
	return 0, fmt.Errorf("bad space")
}

func (m *mapMem) Store(space isa.Space, lane int, addr, v int64) error {
	switch space {
	case isa.SpaceGlobal:
		m.global[addr] = v
	case isa.SpaceShared:
		m.shared[addr] = v
	case isa.SpaceLocal:
		m.local[[2]int64{int64(lane), addr}] = v
	default:
		return fmt.Errorf("bad space %v", space)
	}
	return nil
}

// recHooks records the block trace and memory events.
type recHooks struct {
	blocks []int
	masks  []uint32
	mems   []memEvent
}

type memEvent struct {
	block, memIdx int
	space         isa.Space
	store         bool
	addrs         []int64
}

func (h *recHooks) OnBlockEnter(block int, mask uint32) {
	h.blocks = append(h.blocks, block)
	h.masks = append(h.masks, mask)
}

func (h *recHooks) OnMemAccess(block, memIdx int, space isa.Space, store bool, addrs []int64) {
	cp := make([]int64, len(addrs))
	copy(cp, addrs)
	h.mems = append(h.mems, memEvent{block, memIdx, space, store, cp})
}

func fullWarp(params ...int64) WarpParams {
	lanes := make([]LaneInfo, WarpWidth)
	for i := range lanes {
		lanes[i] = LaneInfo{Tid: [3]int{i, 0, 0}, GlobalID: i}
	}
	return WarpParams{
		BlockDim: [3]int{WarpWidth, 1, 1},
		GridDim:  [3]int{1, 1, 1},
		Lanes:    lanes,
		Params:   params,
	}
}

func runKernel(t *testing.T, k *isa.Kernel, wp WarpParams, mem Memory) (*recHooks, Stats) {
	t.Helper()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	h := &recHooks{}
	if mem == nil {
		mem = newMapMem()
	}
	st, err := exec.RunWarp(wp, mem, h)
	if err != nil {
		t.Fatal(err)
	}
	return h, st
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUniformBranchSingleSide(t *testing.T) {
	// All lanes take the then-side: the else block must not appear.
	b := kbuild.New("uniform", 0)
	c := b.ConstR(1)
	b.If(c, func() { b.ConstR(2) }, func() { b.ConstR(3) })
	b.Ret()
	k := b.MustBuild()
	h, _ := runKernel(t, k, fullWarp(), nil)
	// Blocks: 0 entry, 1 then, 2 else, 3 join.
	if !eqInts(h.blocks, []int{0, 1, 3}) {
		t.Errorf("trace = %v, want [0 1 3]", h.blocks)
	}
}

func TestDivergentBranchVisitsBothSides(t *testing.T) {
	// Lanes with even tid take then, odd take else: the warp serializes
	// both sides and reconverges at the join, each side with its own mask.
	b := kbuild.New("diverge", 0)
	tid := b.Tid()
	even := b.CmpEQ(b.And(tid, b.ConstR(1)), b.ConstR(0))
	b.If(even, func() { b.ConstR(1) }, func() { b.ConstR(2) })
	b.Ret()
	k := b.MustBuild()
	h, _ := runKernel(t, k, fullWarp(), nil)
	if !eqInts(h.blocks, []int{0, 1, 2, 3}) {
		t.Errorf("trace = %v, want [0 1 2 3]", h.blocks)
	}
	var evenMask, oddMask uint32
	for i := 0; i < WarpWidth; i++ {
		if i%2 == 0 {
			evenMask |= 1 << uint(i)
		} else {
			oddMask |= 1 << uint(i)
		}
	}
	if h.masks[1] != evenMask {
		t.Errorf("then mask = %032b", h.masks[1])
	}
	if h.masks[2] != oddMask {
		t.Errorf("else mask = %032b", h.masks[2])
	}
	if h.masks[3] != ^uint32(0) {
		t.Errorf("join mask = %032b, want full reconvergence", h.masks[3])
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Lane i loops (tid % 4) times, writing its loop count to global[tid].
	b := kbuild.New("looptrips", 0)
	tid := b.Tid()
	limit := b.Mod(tid, b.ConstR(4))
	count := b.Reg()
	b.Const(count, 0)
	i := b.Reg()
	b.Const(i, 0)
	b.While(func() isa.Reg { return b.CmpLT(i, limit) }, func() {
		one := b.ConstR(1)
		b.Bin(isa.OpAdd, count, count, one)
		b.Bin(isa.OpAdd, i, i, one)
	})
	b.Store(isa.SpaceGlobal, tid, 0, count)
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	runKernel(t, k, fullWarp(), mem)
	for lane := 0; lane < WarpWidth; lane++ {
		want := int64(lane % 4)
		if got := mem.global[int64(lane)]; got != want {
			t.Errorf("lane %d count = %d, want %d", lane, got, want)
		}
	}
}

func TestEarlyReturnRetiresLanes(t *testing.T) {
	// Lanes < 8 return early; the rest write a marker.
	b := kbuild.New("earlyret", 0)
	tid := b.Tid()
	small := b.CmpLT(tid, b.ConstR(8))
	b.If(small, func() { b.Ret() }, nil)
	b.Store(isa.SpaceGlobal, tid, 0, b.ConstR(7))
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	h, _ := runKernel(t, k, fullWarp(), nil)
	_ = h
	runKernel(t, k, fullWarp(), mem)
	for lane := 0; lane < WarpWidth; lane++ {
		_, wrote := mem.global[int64(lane)]
		if lane < 8 && wrote {
			t.Errorf("lane %d wrote after early return", lane)
		}
		if lane >= 8 && !wrote {
			t.Errorf("lane %d missing write", lane)
		}
	}
}

func TestAllLanesEarlyReturn(t *testing.T) {
	b := kbuild.New("allret", 0)
	c := b.ConstR(1)
	b.If(c, func() { b.Ret() }, nil)
	b.Store(isa.SpaceGlobal, b.ConstR(0), 0, b.ConstR(1))
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	h, _ := runKernel(t, k, fullWarp(), mem)
	if len(mem.global) != 0 {
		t.Error("store executed after all lanes returned")
	}
	if !eqInts(h.blocks, []int{0, 1}) {
		t.Errorf("trace = %v, want [0 1]", h.blocks)
	}
}

func TestNestedDivergence(t *testing.T) {
	// Outer: tid < 16; inner: tid % 2 == 0. Each lane writes a distinct
	// tag so every path is checked.
	b := kbuild.New("nested", 0)
	tid := b.Tid()
	tag := b.Reg()
	b.Const(tag, 0)
	outer := b.CmpLT(tid, b.ConstR(16))
	b.If(outer, func() {
		even := b.CmpEQ(b.And(tid, b.ConstR(1)), b.ConstR(0))
		b.If(even, func() { b.Const(tag, 1) }, func() { b.Const(tag, 2) })
	}, func() {
		b.Const(tag, 3)
	})
	b.Store(isa.SpaceGlobal, tid, 0, tag)
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	runKernel(t, k, fullWarp(), mem)
	for lane := 0; lane < WarpWidth; lane++ {
		var want int64
		switch {
		case lane >= 16:
			want = 3
		case lane%2 == 0:
			want = 1
		default:
			want = 2
		}
		if got := mem.global[int64(lane)]; got != want {
			t.Errorf("lane %d tag = %d, want %d", lane, got, want)
		}
	}
}

func TestMemAccessEventAddresses(t *testing.T) {
	b := kbuild.New("memev", 0)
	tid := b.Tid()
	addr := b.Add(tid, b.ConstR(100))
	b.Store(isa.SpaceGlobal, addr, 0, tid)
	b.Ret()
	k := b.MustBuild()
	h, _ := runKernel(t, k, fullWarp(), nil)
	if len(h.mems) != 1 {
		t.Fatalf("mem events = %d", len(h.mems))
	}
	ev := h.mems[0]
	if !ev.store || ev.space != isa.SpaceGlobal || ev.memIdx != 0 {
		t.Errorf("event = %+v", ev)
	}
	if len(ev.addrs) != WarpWidth {
		t.Fatalf("addrs = %d", len(ev.addrs))
	}
	for i, a := range ev.addrs {
		if a != int64(100+i) {
			t.Errorf("addr[%d] = %d", i, a)
		}
	}
}

func TestMemIdxSkipsNonMemInstrs(t *testing.T) {
	b := kbuild.New("memidx", 0)
	x := b.ConstR(5)
	b.Load(isa.SpaceGlobal, x, 0) // memIdx 0
	y := b.Add(x, x)
	b.Load(isa.SpaceGlobal, y, 0)     // memIdx 1
	b.Store(isa.SpaceGlobal, y, 0, x) // memIdx 2
	b.Ret()
	k := b.MustBuild()
	h, _ := runKernel(t, k, fullWarp(), nil)
	if len(h.mems) != 3 {
		t.Fatalf("mem events = %d", len(h.mems))
	}
	for i, ev := range h.mems {
		if ev.memIdx != i {
			t.Errorf("event %d has memIdx %d", i, ev.memIdx)
		}
	}
}

func TestPartialWarp(t *testing.T) {
	b := kbuild.New("partial", 0)
	tid := b.Tid()
	b.Store(isa.SpaceGlobal, tid, 0, b.ConstR(1))
	b.Ret()
	k := b.MustBuild()
	wp := fullWarp()
	wp.Lanes = wp.Lanes[:5]
	h, st := runKernel(t, k, wp, nil)
	if h.masks[0] != 0b11111 {
		t.Errorf("initial mask = %b", h.masks[0])
	}
	if st.BlocksExecuted != 1 {
		t.Errorf("blocks executed = %d", st.BlocksExecuted)
	}
	if len(h.mems[0].addrs) != 5 {
		t.Errorf("addrs = %d, want 5", len(h.mems[0].addrs))
	}
}

func TestSpecialRegisters(t *testing.T) {
	b := kbuild.New("specials", 1)
	out := b.Reg()
	b.Const(out, 0)
	store := func(sel int64, slot int64) {
		v := b.Special(sel)
		base := b.ConstR(slot * 64)
		tid := b.Special(isa.SpecTidX)
		b.Store(isa.SpaceGlobal, b.Add(base, tid), 0, v)
	}
	store(isa.SpecLaneID, 0)
	store(isa.SpecNtidX, 1)
	store(isa.SpecWarpID, 2)
	store(isa.SpecParamBase, 3)
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	wp := fullWarp(42)
	wp.WarpID = 3
	runKernel(t, k, wp, mem)
	for lane := 0; lane < WarpWidth; lane++ {
		if got := mem.global[int64(lane)]; got != int64(lane) {
			t.Errorf("laneid[%d] = %d", lane, got)
		}
		if got := mem.global[int64(64+lane)]; got != WarpWidth {
			t.Errorf("ntid[%d] = %d", lane, got)
		}
		if got := mem.global[int64(128+lane)]; got != 3 {
			t.Errorf("warpid[%d] = %d", lane, got)
		}
		if got := mem.global[int64(192+lane)]; got != 42 {
			t.Errorf("param[%d] = %d", lane, got)
		}
	}
}

func TestLocalMemoryIsPerLane(t *testing.T) {
	b := kbuild.New("local", 0)
	tid := b.Tid()
	b.Store(isa.SpaceLocal, b.ConstR(0), 0, tid)
	v := b.Load(isa.SpaceLocal, b.ConstR(0), 0)
	b.Store(isa.SpaceGlobal, tid, 0, v)
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	runKernel(t, k, fullWarp(), mem)
	for lane := 0; lane < WarpWidth; lane++ {
		if got := mem.global[int64(lane)]; got != int64(lane) {
			t.Errorf("lane %d read back %d from local slot 0", lane, got)
		}
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	b := kbuild.New("spin", 0)
	i := b.Reg()
	b.Const(i, 0)
	b.While(func() isa.Reg { return b.ConstR(1) }, func() {})
	b.Ret()
	k := b.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	exec.SetMaxBlocks(100)
	_, err = exec.RunWarp(fullWarp(), newMapMem(), nil)
	if err == nil {
		t.Error("infinite loop not caught")
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	for _, op := range []isa.Op{isa.OpDiv, isa.OpMod} {
		b := kbuild.New("divzero", 0)
		x := b.ConstR(5)
		z := b.ConstR(0)
		b.BinR(op, x, z)
		b.Ret()
		k := b.MustBuild()
		exec, err := NewExecutor(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.RunWarp(fullWarp(), newMapMem(), nil); err == nil {
			t.Errorf("%v by zero not trapped", op)
		}
	}
}

func TestALUSemantics(t *testing.T) {
	tests := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpAdd, 3, 4, 7},
		{isa.OpSub, 3, 4, -1},
		{isa.OpMul, -3, 4, -12},
		{isa.OpDiv, 7, 2, 3},
		{isa.OpDiv, -7, 2, -3},
		{isa.OpMod, 7, 3, 1},
		{isa.OpAnd, 0b1100, 0b1010, 0b1000},
		{isa.OpOr, 0b1100, 0b1010, 0b1110},
		{isa.OpXor, 0b1100, 0b1010, 0b0110},
		{isa.OpShl, 1, 4, 16},
		{isa.OpShr, -1, 60, 15},
		{isa.OpSar, -16, 2, -4},
		{isa.OpMin, 3, -2, -2},
		{isa.OpMax, 3, -2, 3},
		{isa.OpCmpEQ, 5, 5, 1},
		{isa.OpCmpNE, 5, 5, 0},
		{isa.OpCmpLT, -1, 0, 1},
		{isa.OpCmpLE, 0, 0, 1},
		{isa.OpCmpGT, 1, 2, 0},
		{isa.OpCmpGE, 2, 2, 1},
	}
	for _, tt := range tests {
		got, err := alu(tt.op, tt.a, tt.b)
		if err != nil {
			t.Errorf("%v(%d,%d): %v", tt.op, tt.a, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

// TestBranchSelectEquivalence is the if-conversion correctness property:
// a branchy max and a select max must produce identical results for every
// lane, for random inputs.
func TestBranchSelectEquivalence(t *testing.T) {
	branchy := func() *isa.Kernel {
		b := kbuild.New("branchy", 0)
		tid := b.Tid()
		v := b.Load(isa.SpaceGlobal, tid, 0)
		res := b.Reg()
		b.Mov(res, v)
		neg := b.CmpLT(v, b.ConstR(0))
		b.If(neg, func() { b.Const(res, 0) }, nil)
		b.Store(isa.SpaceGlobal, b.Add(tid, b.ConstR(1000)), 0, res)
		b.Ret()
		return b.MustBuild()
	}()
	selecty := func() *isa.Kernel {
		b := kbuild.New("selecty", 0)
		tid := b.Tid()
		v := b.Load(isa.SpaceGlobal, tid, 0)
		zero := b.ConstR(0)
		pos := b.CmpGE(v, zero)
		res := b.Select(pos, v, zero)
		b.Store(isa.SpaceGlobal, b.Add(tid, b.ConstR(1000)), 0, res)
		b.Ret()
		return b.MustBuild()
	}()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m1, m2 := newMapMem(), newMapMem()
		for i := 0; i < WarpWidth; i++ {
			v := r.Int63n(200) - 100
			m1.global[int64(i)] = v
			m2.global[int64(i)] = v
		}
		e1, _ := NewExecutor(branchy)
		e2, _ := NewExecutor(selecty)
		if _, err := e1.RunWarp(fullWarp(), m1, nil); err != nil {
			return false
		}
		if _, err := e2.RunWarp(fullWarp(), m2, nil); err != nil {
			return false
		}
		for i := 0; i < WarpWidth; i++ {
			if m1.global[int64(1000+i)] != m2.global[int64(1000+i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounting(t *testing.T) {
	b := kbuild.New("stats", 0)
	b.ConstR(1)
	b.ConstR(2)
	b.Ret()
	k := b.MustBuild()
	_, st := runKernel(t, k, fullWarp(), nil)
	if st.BlocksExecuted != 1 {
		t.Errorf("blocks = %d", st.BlocksExecuted)
	}
	if st.Instructions != 2*WarpWidth {
		t.Errorf("instructions = %d, want %d", st.Instructions, 2*WarpWidth)
	}
}

func TestInvalidWarpSizes(t *testing.T) {
	b := kbuild.New("tiny", 0)
	b.Ret()
	k := b.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	wp := fullWarp()
	wp.Lanes = nil
	if _, err := exec.RunWarp(wp, newMapMem(), nil); err == nil {
		t.Error("empty warp accepted")
	}
	wp.Lanes = make([]LaneInfo, WarpWidth+1)
	if _, err := exec.RunWarp(wp, newMapMem(), nil); err == nil {
		t.Error("oversized warp accepted")
	}
}

func TestParamOutOfRangeTraps(t *testing.T) {
	b := kbuild.New("noparam", 2)
	b.Param(1)
	b.Ret()
	k := b.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	wp := fullWarp(1) // only one param provided
	if _, err := exec.RunWarp(wp, newMapMem(), nil); err == nil {
		t.Error("missing kernel argument not trapped")
	}
}

func TestBarrierResumable(t *testing.T) {
	b := kbuild.New("barrier", 0)
	tid := b.Tid()
	b.Store(isa.SpaceGlobal, tid, 0, b.ConstR(1))
	b.Barrier()
	b.Store(isa.SpaceGlobal, b.Add(tid, b.ConstR(100)), 0, b.ConstR(2))
	b.Ret()
	k := b.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	mem := newMapMem()
	run, err := exec.NewWarpRun(fullWarp(), mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	atBar, err := run.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if !atBar || run.Done() {
		t.Fatalf("first resume: atBarrier=%v done=%v", atBar, run.Done())
	}
	// Pre-barrier store happened, post-barrier store did not.
	if mem.global[0] != 1 {
		t.Error("pre-barrier store missing")
	}
	if _, ok := mem.global[100]; ok {
		t.Error("post-barrier store executed before release")
	}
	atBar, err = run.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if atBar || !run.Done() {
		t.Fatalf("second resume: atBarrier=%v done=%v", atBar, run.Done())
	}
	if mem.global[100] != 2 {
		t.Error("post-barrier store missing")
	}
}

func TestBarrierInDivergentFlowErrors(t *testing.T) {
	b := kbuild.New("divbar", 0)
	tid := b.Tid()
	odd := b.And(tid, b.ConstR(1))
	b.If(odd, func() { b.Barrier() }, nil)
	b.Ret()
	k := b.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	run, err := exec.NewWarpRun(fullWarp(), newMapMem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for !run.Done() {
		if _, err := run.Resume(); err != nil {
			return // expected
		}
	}
	t.Error("divergent barrier accepted")
}

func TestBarrierUniformBranchOK(t *testing.T) {
	// A warp-uniform branch does not push divergence entries, so a barrier
	// inside it is legal (warpid-conditional code, the CUDA idiom).
	b := kbuild.New("unibar", 0)
	wid := b.Special(isa.SpecWarpID)
	isZero := b.CmpEQ(wid, b.ConstR(0))
	b.If(isZero, func() { b.Barrier() }, nil)
	b.Ret()
	k := b.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunWarp(fullWarp(), newMapMem(), nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWarpThroughput measures raw executor speed on a tight ALU loop
// and reports simulated instructions per second.
func BenchmarkWarpThroughput(b *testing.B) {
	kb := kbuild.New("spinloop", 1)
	n := kb.Param(0)
	acc := kb.Reg()
	kb.Const(acc, 0)
	i := kb.Reg()
	kb.Const(i, 0)
	kb.While(func() isa.Reg { return kb.CmpLT(i, n) }, func() {
		x := kb.Xor(acc, i)
		kb.Mov(acc, x)
		one := kb.ConstR(1)
		kb.Bin(isa.OpAdd, i, i, one)
	})
	kb.Store(isa.SpaceGlobal, kb.ConstR(0), 0, acc)
	kb.Ret()
	k := kb.MustBuild()
	exec, err := NewExecutor(k)
	if err != nil {
		b.Fatal(err)
	}
	mem := newMapMem()
	var inst int64
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		st, err := exec.RunWarp(fullWarp(1000), mem, nil)
		if err != nil {
			b.Fatal(err)
		}
		inst = st.Instructions
	}
	b.ReportMetric(float64(inst)*float64(b.N)/b.Elapsed().Seconds()/1e6, "simulated-MIPS")
}

func TestShuffleButterflyReduction(t *testing.T) {
	// Classic warp-level reduction: v += shfl(v, laneid ^ s) for s in
	// {16, 8, 4, 2, 1}; afterwards every lane holds the warp sum.
	b := kbuild.New("warpsum", 1)
	lane := b.Special(isa.SpecLaneID)
	v := b.Reg()
	loaded := b.Load(isa.SpaceGlobal, lane, 0)
	b.Mov(v, loaded)
	for s := int64(16); s >= 1; s /= 2 {
		partner := b.Xor(lane, b.ConstR(s))
		other := b.Shfl(v, partner)
		sum := b.Add(v, other)
		b.Mov(v, sum)
	}
	out := b.Param(0)
	b.Store(isa.SpaceGlobal, b.Add(out, lane), 0, v)
	b.Ret()
	k := b.MustBuild()

	mem := newMapMem()
	var want int64
	for i := 0; i < WarpWidth; i++ {
		mem.global[int64(i)] = int64(i * i)
		want += int64(i * i)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunWarp(fullWarp(100), mem, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < WarpWidth; i++ {
		if got := mem.global[int64(100+i)]; got != want {
			t.Errorf("lane %d sum = %d, want %d", i, got, want)
		}
	}
}

func TestShuffleReadsPreInstructionValues(t *testing.T) {
	// Every lane rotates its value to lane+1: lane i must read lane
	// (i-1)'s ORIGINAL value even though lower lanes execute first.
	b := kbuild.New("rotate", 1)
	lane := b.Special(isa.SpecLaneID)
	v := b.Reg()
	loaded := b.Load(isa.SpaceGlobal, lane, 0)
	b.Mov(v, loaded)
	prev := b.Add(lane, b.ConstR(WarpWidth-1)) // (lane-1) mod width via +31
	got := b.Shfl(v, prev)
	b.Mov(v, got)
	out := b.Param(0)
	b.Store(isa.SpaceGlobal, b.Add(out, lane), 0, v)
	b.Ret()
	k := b.MustBuild()
	mem := newMapMem()
	for i := 0; i < WarpWidth; i++ {
		mem.global[int64(i)] = int64(1000 + i)
	}
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunWarp(fullWarp(100), mem, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < WarpWidth; i++ {
		want := int64(1000 + (i+WarpWidth-1)%WarpWidth)
		if got := mem.global[int64(100+i)]; got != want {
			t.Errorf("lane %d = %d, want %d", i, got, want)
		}
	}
}

func TestShufflePartialWarpWraps(t *testing.T) {
	b := kbuild.New("partshfl", 1)
	lane := b.Special(isa.SpecLaneID)
	v := b.Reg()
	b.Mov(v, lane)
	idx := b.ConstR(7) // beyond the 4 live lanes: wraps mod nl
	got := b.Shfl(v, idx)
	out := b.Param(0)
	b.Store(isa.SpaceGlobal, b.Add(out, lane), 0, got)
	b.Ret()
	k := b.MustBuild()
	wp := fullWarp(0)
	wp.Lanes = wp.Lanes[:4]
	mem := newMapMem()
	exec, err := NewExecutor(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunWarp(wp, mem, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := mem.global[int64(i)]; got != 7%4 {
			t.Errorf("lane %d read %d, want %d", i, got, 7%4)
		}
	}
}
