package simt

// The reference interpreter: a direct port of the per-lane algorithm the
// warp-vectorized interpreter replaced. It executes straight from
// isa.Kernel — per-lane register slices, one execInstr call per active
// lane, terminator evaluated by re-reading the condition register — and
// is kept only as the oracle for FuzzInterpEquivalence and the
// equivalence tests: both interpreters must produce identical hook
// traces, register-visible effects, statistics, and errors.

import (
	"fmt"

	"owl/internal/isa"
)

// refWarpState is the resumable form of the reference: one warp's
// registers, reconvergence stack, and statistics, advanced a barrier
// interval at a time by refResume — the per-lane mirror of
// WarpRun.Resume. refRunBlock drives several of these on the rounds
// schedule to give the block-batched interpreter a multi-warp oracle.
type refWarpState struct {
	e       *Executor
	wp      WarpParams
	mem     Memory
	hooks   Hooks
	regs    [][]int64
	stack   []simtEntry
	resume  int
	st      Stats
	memIdx  [][]int
	scratch []int64
	done    bool
}

func newRefWarpState(e *Executor, wp WarpParams, mem Memory, hooks Hooks) (*refWarpState, error) {
	nl := len(wp.Lanes)
	if nl == 0 || nl > WarpWidth {
		return nil, fmt.Errorf("simt: warp %d has %d lanes", wp.WarpID, nl)
	}
	regs := make([][]int64, nl)
	for i := range regs {
		regs[i] = make([]int64, e.kernel.NumRegs)
	}
	initMask := uint32(0)
	if nl == WarpWidth {
		initMask = ^uint32(0)
	} else {
		initMask = (1 << uint(nl)) - 1
	}

	// memIdx[block][ci] is the index of instruction ci among its block's
	// memory instructions (the hook's memIdx).
	memIdx := make([][]int, len(e.kernel.Blocks))
	for bi, b := range e.kernel.Blocks {
		memIdx[bi] = make([]int, len(b.Code))
		n := 0
		for ci := range b.Code {
			memIdx[bi][ci] = n
			if b.Code[ci].IsMem() {
				n++
			}
		}
	}
	return &refWarpState{
		e: e, wp: wp, mem: mem, hooks: hooks,
		regs:    regs,
		stack:   []simtEntry{{pc: 0, rpc: -1, mask: initMask}},
		resume:  -1,
		memIdx:  memIdx,
		scratch: make([]int64, 0, WarpWidth),
	}, nil
}

// refResume executes until the warp retires (returns false) or reaches a
// barrier (returns true), exactly as WarpRun.Resume segments execution.
func (s *refWarpState) refResume() (atBarrier bool, err error) {
	e := s.e
	wp := s.wp
	nl := len(wp.Lanes)
	regs := s.regs

	for len(s.stack) > 0 {
		top := &s.stack[len(s.stack)-1]
		if top.mask == 0 || top.pc == top.rpc || top.pc < 0 {
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		if s.st.BlocksExecuted >= e.maxBlocks {
			return false, fmt.Errorf("simt: kernel %q warp %d exceeded %d blocks (possible infinite loop)",
				e.kernel.Name, wp.WarpID, e.maxBlocks)
		}
		blockID := top.pc
		mask := top.mask
		block := e.kernel.Blocks[blockID]

		start := 0
		if s.resume >= 0 {
			start = s.resume
			s.resume = -1
		} else {
			s.st.BlocksExecuted++
			if s.hooks != nil {
				s.hooks.OnBlockEnter(blockID, mask)
			}
		}

		for ci := start; ci < len(block.Code); ci++ {
			in := &block.Code[ci]
			if in.Op == isa.OpShfl {
				// Cross-lane read: every lane sees the pre-instruction
				// value of the source register.
				s.st.Instructions += refPopcount(mask)
				pre := make([]int64, nl)
				for lane := 0; lane < nl; lane++ {
					pre[lane] = regs[lane][in.A]
				}
				for lane := 0; lane < nl; lane++ {
					if mask&(1<<uint(lane)) == 0 {
						continue
					}
					src := int(uint64(regs[lane][in.B]) % uint64(nl))
					regs[lane][in.Dst] = pre[src]
				}
				continue
			}
			if in.Op == isa.OpBarrier {
				if len(s.stack) != 1 {
					return false, fmt.Errorf("simt: kernel %q B%d: barrier inside divergent control flow",
						e.kernel.Name, blockID)
				}
				// Suspend at the barrier; the next refResume continues
				// with the instruction after it.
				s.resume = ci + 1
				return true, nil
			}
			s.st.Instructions += refPopcount(mask)
			if in.IsMem() {
				s.scratch = s.scratch[:0]
			}
			for lane := 0; lane < nl; lane++ {
				if mask&(1<<uint(lane)) == 0 {
					continue
				}
				addr, err := refExecInstr(in, regs[lane], lane, wp, s.mem)
				if err != nil {
					return false, fmt.Errorf("simt: kernel %q B%d instr %d lane %d: %w",
						e.kernel.Name, blockID, ci, lane, err)
				}
				if in.IsMem() {
					s.scratch = append(s.scratch, addr)
				}
			}
			if in.IsMem() && s.hooks != nil {
				s.hooks.OnMemAccess(blockID, s.memIdx[blockID][ci], in.Space, in.Op == isa.OpStore, s.scratch)
			}
		}

		switch block.Term.Kind {
		case isa.TermJump:
			top.pc = block.Term.True
		case isa.TermRet:
			done := top.mask
			s.stack = s.stack[:len(s.stack)-1]
			for i := range s.stack {
				s.stack[i].mask &^= done
			}
		case isa.TermBranch:
			var taken, fall uint32
			for lane := 0; lane < nl; lane++ {
				bit := uint32(1) << uint(lane)
				if mask&bit == 0 {
					continue
				}
				if regs[lane][block.Term.Cond] != 0 {
					taken |= bit
				} else {
					fall |= bit
				}
			}
			switch {
			case fall == 0:
				top.pc = block.Term.True
			case taken == 0:
				top.pc = block.Term.False
			default:
				rpc := e.graph.IPostDom(blockID)
				top.pc = rpc
				s.stack = append(s.stack,
					simtEntry{pc: block.Term.False, rpc: rpc, mask: fall},
					simtEntry{pc: block.Term.True, rpc: rpc, mask: taken},
				)
			}
		}
	}
	s.done = true
	return false, nil
}

// refRunWarp executes one warp to completion with the reference per-lane
// algorithm, using only e.kernel and e.graph from the executor (never the
// decoded program). Barriers suspend and immediately resume, so a lone
// warp sees them trivially satisfied, matching Executor.RunWarp.
func refRunWarp(e *Executor, wp WarpParams, mem Memory, hooks Hooks) (Stats, error) {
	s, err := newRefWarpState(e, wp, mem, hooks)
	if err != nil {
		return Stats{}, err
	}
	for {
		bar, err := s.refResume()
		if err != nil || !bar {
			return s.st, err
		}
	}
}

// refRunBlock executes every warp of one thread block on the rounds
// schedule the block driver falls back to: per round, each live warp (in
// warp index order) advances to its next barrier or retirement. The
// returned stats are per warp; the first error aborts the block exactly
// as BlockRun.Run surfaces it.
func refRunBlock(e *Executor, wps []WarpParams, mems []Memory, hooks []Hooks) ([]Stats, error) {
	states := make([]*refWarpState, len(wps))
	stats := make([]Stats, len(wps))
	for w := range wps {
		s, err := newRefWarpState(e, wps[w], mems[w], hooks[w])
		if err != nil {
			return stats, err
		}
		states[w] = s
	}
	collect := func() {
		for w, s := range states {
			stats[w] = s.st
		}
	}
	for {
		active := 0
		for _, s := range states {
			if s.done {
				continue
			}
			active++
			if _, err := s.refResume(); err != nil {
				collect()
				return stats, err
			}
		}
		if active == 0 {
			collect()
			return stats, nil
		}
	}
}

func refExecInstr(in *isa.Instr, r []int64, lane int, wp WarpParams, mem Memory) (int64, error) {
	switch in.Op {
	case isa.OpNop, isa.OpBarrier:
	case isa.OpConst:
		r[in.Dst] = in.Imm
	case isa.OpMov:
		r[in.Dst] = r[in.A]
	case isa.OpNot:
		if r[in.A] == 0 {
			r[in.Dst] = 1
		} else {
			r[in.Dst] = 0
		}
	case isa.OpSelect:
		if r[in.A] != 0 {
			r[in.Dst] = r[in.B]
		} else {
			r[in.Dst] = r[in.C]
		}
	case isa.OpLoad:
		addr := r[in.A] + in.Imm
		v, err := mem.Load(in.Space, lane, addr)
		if err != nil {
			return 0, err
		}
		r[in.Dst] = v
		return addr, nil
	case isa.OpStore:
		addr := r[in.A] + in.Imm
		if err := mem.Store(in.Space, lane, addr, r[in.B]); err != nil {
			return 0, err
		}
		return addr, nil
	case isa.OpSpecial:
		v, err := refSpecial(in.Imm, lane, wp)
		if err != nil {
			return 0, err
		}
		r[in.Dst] = v
	default:
		v, err := alu(in.Op, r[in.A], r[in.B])
		if err != nil {
			return 0, err
		}
		r[in.Dst] = v
	}
	return 0, nil
}

func refSpecial(sel int64, lane int, wp WarpParams) (int64, error) {
	li := wp.Lanes[lane]
	switch sel {
	case isa.SpecTidX:
		return int64(li.Tid[0]), nil
	case isa.SpecTidY:
		return int64(li.Tid[1]), nil
	case isa.SpecTidZ:
		return int64(li.Tid[2]), nil
	case isa.SpecCtaidX:
		return int64(wp.BlockIdx[0]), nil
	case isa.SpecCtaidY:
		return int64(wp.BlockIdx[1]), nil
	case isa.SpecCtaidZ:
		return int64(wp.BlockIdx[2]), nil
	case isa.SpecNtidX:
		return int64(wp.BlockDim[0]), nil
	case isa.SpecNtidY:
		return int64(wp.BlockDim[1]), nil
	case isa.SpecNtidZ:
		return int64(wp.BlockDim[2]), nil
	case isa.SpecNctaidX:
		return int64(wp.GridDim[0]), nil
	case isa.SpecNctaidY:
		return int64(wp.GridDim[1]), nil
	case isa.SpecNctaidZ:
		return int64(wp.GridDim[2]), nil
	case isa.SpecLaneID:
		return int64(lane), nil
	case isa.SpecWarpID:
		return int64(wp.WarpID), nil
	case isa.SpecGlobalTid:
		return int64(li.GlobalID), nil
	}
	if sel >= isa.SpecParamBase {
		i := int(sel - isa.SpecParamBase)
		if i >= len(wp.Params) {
			return 0, fmt.Errorf("param %d out of range (%d provided)", i, len(wp.Params))
		}
		return wp.Params[i], nil
	}
	return 0, fmt.Errorf("unknown special register %d", sel)
}

func refPopcount(m uint32) int64 {
	n := int64(0)
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
