//go:build !race

package simt

const raceEnabled = false
