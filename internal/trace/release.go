package trace

import "owl/internal/adcfg"

// Release returns the trace's A-DCFGs to the shared adcfg buffer pools.
// It is the tear-down half of the streaming evidence pipeline: once a
// trace has been merged into evidence (or classed as a duplicate), its
// graphs are recycled so the next recording reuses their node, visit, and
// histogram maps instead of growing the heap.
//
// The caller must own t outright — no other reference to the trace or any
// of its graphs may survive the call. t is unusable afterwards.
// Release(nil) is a no-op.
func Release(t *ProgramTrace) {
	if t == nil {
		return
	}
	for _, inv := range t.Invocations {
		adcfg.Recycle(inv.Graph)
		inv.Graph = nil
		inv.Cost = nil
	}
	t.Invocations = nil
	t.Allocs = nil
}
