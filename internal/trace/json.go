package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ProgramTrace marshals directly: all fields are exported and the A-DCFG
// provides canonical JSON. These helpers add file round-tripping for the
// owltrace tool.

// WriteJSON writes the trace as indented JSON.
func (t *ProgramTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// SaveJSON writes the trace to a file.
func (t *ProgramTrace) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadJSON decodes a trace from a reader. Structurally invalid traces —
// decodable bytes that would panic Encode or Hash later — are rejected
// here.
func ReadJSON(r io.Reader) (*ProgramTrace, error) {
	var t ProgramTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadJSON reads a trace file.
func LoadJSON(path string) (*ProgramTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
