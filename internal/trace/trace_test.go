package trace

import (
	"testing"

	"owl/internal/adcfg"
	"owl/internal/gpu"
)

func mkGraph(kernel string, blocks []int) *adcfg.Graph {
	g := adcfg.NewGraph(kernel)
	f := adcfg.NewWarpFolder(g, nil)
	for _, b := range blocks {
		f.EnterBlock(b)
	}
	f.Finish()
	return g
}

func mkTrace() *ProgramTrace {
	return &ProgramTrace{
		Program: "p",
		Allocs:  []Alloc{{ID: 0, Words: 16, Site: "main"}},
		Invocations: []*Invocation{
			{Seq: 0, StackID: "main/a/k1", Kernel: "k1", Grid: gpu.D1(1), Block: gpu.D1(32), Graph: mkGraph("k1", []int{0, 1})},
			{Seq: 1, StackID: "main/b/k2", Kernel: "k2", Grid: gpu.D1(2), Block: gpu.D1(64), Graph: mkGraph("k2", []int{0})},
		},
	}
}

func TestStackSeq(t *testing.T) {
	tr := mkTrace()
	seq := tr.StackSeq()
	if len(seq) != 2 || seq[0] != "main/a/k1" || seq[1] != "main/b/k2" {
		t.Errorf("StackSeq = %v", seq)
	}
}

func TestHashStability(t *testing.T) {
	if mkTrace().Hash() != mkTrace().Hash() {
		t.Error("identical traces hash differently")
	}
}

func TestHashSensitivity(t *testing.T) {
	mutations := map[string]func(*ProgramTrace){
		"program name":     func(tr *ProgramTrace) { tr.Program = "q" },
		"alloc size":       func(tr *ProgramTrace) { tr.Allocs[0].Words = 99 },
		"alloc site":       func(tr *ProgramTrace) { tr.Allocs[0].Site = "elsewhere" },
		"stack id":         func(tr *ProgramTrace) { tr.Invocations[0].StackID = "main/z/k1" },
		"grid":             func(tr *ProgramTrace) { tr.Invocations[0].Grid = gpu.D1(7) },
		"block":            func(tr *ProgramTrace) { tr.Invocations[1].Block = gpu.D1(128) },
		"graph":            func(tr *ProgramTrace) { tr.Invocations[0].Graph = mkGraph("k1", []int{0, 2}) },
		"drop invocation":  func(tr *ProgramTrace) { tr.Invocations = tr.Invocations[:1] },
		"reorder launches": func(tr *ProgramTrace) { tr.Invocations[0], tr.Invocations[1] = tr.Invocations[1], tr.Invocations[0] },
	}
	base := mkTrace().Hash()
	for name, mutate := range mutations {
		tr := mkTrace()
		mutate(tr)
		if tr.Hash() == base {
			t.Errorf("%s not reflected in hash", name)
		}
	}
}

func TestSizeBytesGrows(t *testing.T) {
	tr := mkTrace()
	small := tr.SizeBytes()
	tr.Invocations = append(tr.Invocations, &Invocation{
		StackID: "main/c/k3", Kernel: "k3", Graph: mkGraph("k3", []int{0, 1, 2, 3}),
	})
	if tr.SizeBytes() <= small {
		t.Error("size did not grow")
	}
}

func TestStringSummary(t *testing.T) {
	s := mkTrace().String()
	if s == "" {
		t.Error("empty summary")
	}
}
