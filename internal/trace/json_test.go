package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestJSONRoundtrip(t *testing.T) {
	orig := mkTrace()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != orig.Hash() {
		t.Error("JSON roundtrip changed the canonical hash")
	}
	if back.Program != orig.Program || len(back.Invocations) != len(orig.Invocations) {
		t.Errorf("roundtrip shape: %+v", back)
	}
}

func TestJSONFileRoundtrip(t *testing.T) {
	orig := mkTrace()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := orig.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != orig.Hash() {
		t.Error("file roundtrip changed the canonical hash")
	}
}

func TestLoadJSONMissingFile(t *testing.T) {
	if _, err := LoadJSON("/nonexistent/trace.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
}
