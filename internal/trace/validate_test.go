package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := mkTrace().Validate(); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	empty := &ProgramTrace{Program: "p"}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty trace rejected: %v", err)
	}
}

func TestValidateRejectsNilParts(t *testing.T) {
	cases := map[string]func(*ProgramTrace){
		"nil invocation": func(tr *ProgramTrace) { tr.Invocations[0] = nil },
		"nil graph":      func(tr *ProgramTrace) { tr.Invocations[0].Graph = nil },
		"nil node": func(tr *ProgramTrace) {
			g := tr.Invocations[0].Graph
			for id := range g.Nodes {
				g.Nodes[id] = nil
				break
			}
		},
		"nil visit": func(tr *ProgramTrace) {
			g := tr.Invocations[0].Graph
			for _, n := range g.Nodes {
				if len(n.Visits) > 0 {
					n.Visits[0] = nil
					return
				}
			}
			t.Fatal("mkTrace has no visits to corrupt")
		},
		"nil edge": func(tr *ProgramTrace) {
			g := tr.Invocations[0].Graph
			for key := range g.Edges {
				g.Edges[key] = nil
				break
			}
		},
	}
	var nilTrace *ProgramTrace
	if err := nilTrace.Validate(); err == nil {
		t.Error("nil trace accepted")
	}
	for name, corrupt := range cases {
		tr := mkTrace()
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestDecodersRejectInvalid proves both decoders run validation: a trace
// whose graph pointer is lost in transit (gob omits nil pointer fields;
// JSON carries an explicit null) must error at decode time instead of
// panicking later in Hash or Encode.
func TestDecodersRejectInvalid(t *testing.T) {
	tr := mkTrace()
	tr.Invocations[1].Graph = nil
	var buf bytes.Buffer
	if err := tr.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGob(&buf); err == nil {
		t.Error("gob decoder accepted a trace with a nil graph")
	}

	if _, err := ReadJSON(strings.NewReader(`{"Program":"p","Invocations":[null]}`)); err == nil {
		t.Error("json decoder accepted a nil invocation")
	}
	if _, err := ReadJSON(strings.NewReader(`{"Program":"p","Invocations":[{"Kernel":"k","Graph":null}]}`)); err == nil {
		t.Error("json decoder accepted a nil graph")
	}
}
