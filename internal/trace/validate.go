package trace

import "fmt"

// Validate checks the structural invariants the rest of the pipeline
// assumes: no nil invocations, graphs, nodes, visits, or edges. Encode
// and Hash index straight into these structures, so a trace decoded from
// an untrusted byte stream — the cluster wire format, a file on disk —
// must pass here before any later use can panic on it. Decoders call
// Validate automatically; a trace built by the tracer always passes.
func (t *ProgramTrace) Validate() error {
	if t == nil {
		return fmt.Errorf("trace: nil trace")
	}
	for i, inv := range t.Invocations {
		if inv == nil {
			return fmt.Errorf("trace: invocation %d is nil", i)
		}
		if inv.Graph == nil {
			return fmt.Errorf("trace: invocation %d (%s) has no graph", i, inv.Kernel)
		}
		for id, n := range inv.Graph.Nodes {
			if n == nil {
				return fmt.Errorf("trace: invocation %d: node %d is nil", i, id)
			}
			for j, v := range n.Visits {
				if v == nil {
					return fmt.Errorf("trace: invocation %d: node %d visit %d is nil", i, id, j)
				}
			}
		}
		for key, e := range inv.Graph.Edges {
			if e == nil {
				return fmt.Errorf("trace: invocation %d: edge %d->%d is nil", i, key.Src, key.Dst)
			}
		}
		for j, c := range inv.Cost {
			if c.Metric < CostBank || c.Metric > CostPower {
				return fmt.Errorf("trace: invocation %d: cost site %d has unknown metric %d", i, j, c.Metric)
			}
			if c.Block < 0 || c.Instr < 0 || c.Events <= 0 || c.Total < 0 {
				return fmt.Errorf("trace: invocation %d: cost site %d is malformed (%+v)", i, j, c)
			}
			if j > 0 && !costLess(inv.Cost[j-1], c) {
				return fmt.Errorf("trace: invocation %d: cost sites not in canonical order at %d", i, j)
			}
		}
	}
	return nil
}
