// Package trace defines the program-level execution trace of §V-A: the
// chronological sequence of kernel invocations (each carrying the A-DCFG
// reconstructed from its warps) plus the allocation records captured on the
// host. Traces hash canonically so the duplicates-removing phase (§VI) can
// class inputs by trace equality.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"owl/internal/adcfg"
	"owl/internal/gpu"
)

// Alloc is one host-observed device allocation.
type Alloc struct {
	ID    int
	Words int64
	Site  string
}

// Invocation is one kernel launch with its reconstructed A-DCFG.
type Invocation struct {
	Seq     int
	StackID string
	Kernel  string
	Grid    gpu.Dim3
	Block   gpu.Dim3
	Graph   *adcfg.Graph
	// Cost holds the invocation's microarchitectural cost sites, sorted
	// by (Metric, Block, Instr). Empty unless the run was recorded with
	// the cost channel enabled (tracer.WithCost); when present it joins
	// the canonical encoding, so cost-divergent runs class separately
	// even when their address traces agree.
	Cost []CostSite
}

// ProgramTrace is T_P: the ordered launches of one program execution.
type ProgramTrace struct {
	Program     string
	Invocations []*Invocation
	Allocs      []Alloc
}

// StackSeq returns the launch identity sequence, the unit of Myers
// alignment during evidence merging (§VII-A).
func (t *ProgramTrace) StackSeq() []string {
	out := make([]string, len(t.Invocations))
	for i, inv := range t.Invocations {
		out[i] = inv.StackID
	}
	return out
}

// Encode produces the canonical binary form of the trace.
func (t *ProgramTrace) Encode() []byte {
	var buf []byte
	put := func(v int64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putStr := func(s string) {
		put(int64(len(s)))
		buf = append(buf, s...)
	}
	putStr(t.Program)
	put(int64(len(t.Allocs)))
	for _, a := range t.Allocs {
		put(int64(a.ID))
		put(a.Words)
		putStr(a.Site)
	}
	put(int64(len(t.Invocations)))
	for _, inv := range t.Invocations {
		putStr(inv.StackID)
		put(int64(inv.Grid.Count()))
		put(int64(inv.Block.Count()))
		g := inv.Graph.Encode()
		put(int64(len(g)))
		buf = append(buf, g...)
		// Cost sites join the encoding only when collected, keeping
		// cost-off traces byte-identical to pre-cost-channel builds.
		if len(inv.Cost) > 0 {
			put(int64(len(inv.Cost)))
			for _, c := range inv.Cost {
				put(int64(c.Metric))
				put(int64(c.Block))
				put(int64(c.Instr))
				put(c.Events)
				put(c.Total)
			}
		}
	}
	return buf
}

// Hash returns the canonical SHA-256 of the trace. Two inputs producing
// equal hashes are in the same input class (§VI).
func (t *ProgramTrace) Hash() [32]byte { return sha256.Sum256(t.Encode()) }

// SizeBytes returns the canonical encoded trace size (Fig. 5 metric).
func (t *ProgramTrace) SizeBytes() int { return len(t.Encode()) }

// String summarizes the trace.
func (t *ProgramTrace) String() string {
	return fmt.Sprintf("trace(%s: %d launches, %d allocs, %d bytes)",
		t.Program, len(t.Invocations), len(t.Allocs), t.SizeBytes())
}
