package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestGobRoundtrip(t *testing.T) {
	orig := mkTrace()
	var buf bytes.Buffer
	if err := orig.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != orig.Hash() {
		t.Error("gob roundtrip changed the canonical hash")
	}
}

func TestSaveLoadByExtension(t *testing.T) {
	dir := t.TempDir()
	orig := mkTrace()
	for _, name := range []string{"t.json", "t.gob"} {
		path := filepath.Join(dir, name)
		if err := orig.Save(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Hash() != orig.Hash() {
			t.Errorf("%s roundtrip changed the hash", name)
		}
	}
}

func TestGobSmallerThanJSON(t *testing.T) {
	orig := mkTrace()
	var j, g bytes.Buffer
	if err := orig.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := orig.WriteGob(&g); err != nil {
		t.Fatal(err)
	}
	// Tiny traces pay gob's type-descriptor overhead; just sanity-check
	// both produced output and report the ratio.
	if j.Len() == 0 || g.Len() == 0 {
		t.Fatal("empty encodings")
	}
	t.Logf("json=%d bytes, gob=%d bytes", j.Len(), g.Len())
}

func TestReadGobGarbage(t *testing.T) {
	if _, err := ReadGob(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadGob("/nonexistent.gob"); err == nil {
		t.Error("missing file accepted")
	}
}
