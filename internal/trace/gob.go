package trace

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Binary (gob) trace files: ~3-5x smaller and faster than JSON for large
// traces; JSON remains the interchange format.

// WriteGob writes the trace in gob form.
func (t *ProgramTrace) WriteGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(t); err != nil {
		return fmt.Errorf("trace: gob encode: %w", err)
	}
	return nil
}

// SaveGob writes the trace to a binary file.
func (t *ProgramTrace) SaveGob(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.WriteGob(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadGob decodes a gob trace. Structurally invalid traces — decodable
// bytes that would panic Encode or Hash later — are rejected here.
func ReadGob(r io.Reader) (*ProgramTrace, error) {
	var t ProgramTrace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: gob decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadGob reads a binary trace file.
func LoadGob(path string) (*ProgramTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadGob(f)
}

// Load reads a trace file in either format, by extension: ".gob" is
// binary, anything else JSON.
func Load(path string) (*ProgramTrace, error) {
	if len(path) > 4 && path[len(path)-4:] == ".gob" {
		return LoadGob(path)
	}
	return LoadJSON(path)
}

// Save writes a trace file in the format selected by the extension.
func (t *ProgramTrace) Save(path string) error {
	if len(path) > 4 && path[len(path)-4:] == ".gob" {
		return t.SaveGob(path)
	}
	return t.SaveJSON(path)
}
