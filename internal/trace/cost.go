package trace

// CostMetric identifies one microarchitectural cost observable collected
// per (block, instruction) site by the cost channel.
type CostMetric uint8

const (
	// CostBank is the shared-memory bank-conflict serialization degree:
	// the number of serialized shared-memory cycles one warp access takes
	// on a 32-bank, broadcast-aware model. 1 is conflict-free.
	CostBank CostMetric = iota + 1
	// CostCoalesce is the global-memory coalescing cost: the number of
	// 128-byte transactions one warp access generates.
	CostCoalesce
	// CostPower is the Hamming-weight power proxy: the total population
	// count of the register values written by one instruction across the
	// warp's active lanes.
	CostPower
)

// String names the metric as it appears in leak reports and site keys.
func (m CostMetric) String() string {
	switch m {
	case CostBank:
		return "bank"
	case CostCoalesce:
		return "coalesce"
	case CostPower:
		return "power"
	default:
		return "cost?"
	}
}

// CostSite is one (metric, block, instruction) cost observation aggregated
// over every warp of one kernel invocation. Instr indexes memory
// instructions within the block for CostBank/CostCoalesce (the same
// memIdx the A-DCFG uses) and code positions for CostPower. Events counts
// the warp-level observations folded in; Total is their summed cost, so
// Total/Events is the invocation's mean per-access cost at the site.
type CostSite struct {
	Block  int
	Instr  int
	Metric CostMetric
	Events int64
	Total  int64
}

// costLess orders cost sites canonically: metric, then block, then
// instruction.
func costLess(a, b CostSite) bool {
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	return a.Instr < b.Instr
}
