package coalesce

import (
	"math/rand"
	"testing"

	"owl/internal/gpu"
	"owl/internal/isa"
	"owl/internal/kbuild"
	"owl/internal/owlc"
)

func TestTransactions(t *testing.T) {
	tests := []struct {
		name  string
		addrs []int64
		want  int
	}{
		{"empty", nil, 0},
		{"single", []int64{5}, 1},
		{"fully coalesced", seq(0, 16), 1},
		{"two lines", seq(8, 16), 2},
		{"strided by line", []int64{0, 16, 32, 48}, 4},
		{"all same word", []int64{7, 7, 7, 7}, 1},
		{"worst case 32 lanes", strided(0, 16, 32), 32},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Transactions(tt.addrs); got != tt.want {
				t.Errorf("Transactions(%v) = %d, want %d", tt.addrs, got, tt.want)
			}
		})
	}
}

func seq(start, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(start + i)
	}
	return out
}

func strided(start, stride, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(start + i*stride)
	}
	return out
}

func TestProfileCoalescedVsScattered(t *testing.T) {
	// out[tid] = in[tid] is fully coalesced; out[tid*16] is fully
	// scattered: the profile must show the 16x transaction blow-up.
	build := func(name string, scatter bool) *isa.Kernel {
		b := kbuild.New(name, 2)
		tid := b.Tid()
		addr := tid
		if scatter {
			addr = b.Mul(tid, b.ConstR(16))
		}
		v := b.Load(isa.SpaceGlobal, b.Add(b.Param(0), addr), 0)
		b.Store(isa.SpaceGlobal, b.Add(b.Param(1), addr), 0, v)
		b.Ret()
		return b.MustBuild()
	}
	run := func(scatter bool) *Profile {
		d, err := gpu.NewDevice(gpu.Config{GlobalWords: 1 << 14, ConstWords: 1}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder()
		if _, err := d.Launch(build("k", scatter), gpu.D1(1), gpu.D1(32), []int64{0, 4096}, rec); err != nil {
			t.Fatal(err)
		}
		return rec.Profile
	}
	coalesced := run(false)
	scattered := run(true)
	if coalesced.Total() >= scattered.Total() {
		t.Errorf("coalesced %d transactions >= scattered %d", coalesced.Total(), scattered.Total())
	}
	if got := scattered.Total() / coalesced.Total(); got < 8 {
		t.Errorf("scatter blow-up only %dx, want >= 8x", got)
	}
	// 32 lanes of consecutive 8-byte words span exactly two 128-byte
	// lines.
	k := Key{Block: 0, MemIdx: 0}
	if m := coalesced.Mean(k); m != 2 {
		t.Errorf("coalesced mean = %v, want 2", m)
	}
}

// TestTimingChannelTracksSecret reproduces the coalescing timing channel
// of the paper's motivating attack [6]: when a warp's table lookups are
// indexed purely by the secret, the number of transactions — and hence the
// access latency — depends on how the secret scatters over cache lines.
func TestTimingChannelTracksSecret(t *testing.T) {
	k, err := owlc.Compile(`
		kernel look(key, sbox, out) {
			out[tid & 63] = sbox[key[tid & 63] & 255];
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	total := func(key []int64) int64 {
		d, err := gpu.NewDevice(gpu.Config{GlobalWords: 1 << 12, ConstWords: 1}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		keyRec, err := d.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		sboxRec, err := d.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		outRec, err := d.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteGlobal(keyRec.Base, key); err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder()
		if _, err := d.Launch(k, gpu.D1(1), gpu.D1(64),
			[]int64{keyRec.Base, sboxRec.Base, outRec.Base}, rec); err != nil {
			t.Fatal(err)
		}
		return rec.Profile.Total()
	}
	concentrated := make([]int64, 64) // every lane hits s-box line 0
	spread := make([]int64, 64)       // lanes scatter over all 16 lines
	for i := range spread {
		spread[i] = int64(i * 4)
	}
	a := total(concentrated)
	b := total(spread)
	if a >= b {
		t.Errorf("concentrated key %d transactions >= spread key %d — timing channel missing", a, b)
	}
	t.Logf("transactions: concentrated=%d spread=%d", a, b)
}

func TestMeanEmpty(t *testing.T) {
	p := NewProfile()
	if p.Mean(Key{}) != 0 || p.Total() != 0 {
		t.Error("empty profile not zero")
	}
}
