// Package coalesce is a thin re-export of the coalescing half of
// internal/microarch, kept so existing imports and tests keep compiling.
// The model — 128-byte transactions per warp access, the timing
// observable of Jiang et al.'s HPCA'16 AES attack — now lives in
// microarch alongside the bank-conflict and power-proxy observables, and
// feeds the detection pipeline's cost channel rather than sitting
// stranded below it. New code should import owl/internal/microarch.
package coalesce

import "owl/internal/microarch"

// WordsPerLine is the coalescing granularity: 128-byte lines of 8-byte
// words.
const WordsPerLine = microarch.WordsPerLine

// Transactions returns the number of memory transactions needed to
// service one warp access with the given lane addresses.
func Transactions(addrs []int64) int { return microarch.Transactions(addrs) }

// Profile aggregates transaction counts per (block, memIdx) instruction.
type Profile = microarch.Profile

// Key identifies one memory instruction.
type Key = microarch.Key

// Recorder is a gpu.Instrument that fills a Profile per launch.
type Recorder = microarch.Recorder

// NewProfile returns an empty profile.
func NewProfile() *Profile { return microarch.NewProfile() }

// NewRecorder returns a recorder with a fresh profile.
func NewRecorder() *Recorder { return microarch.NewRecorder() }
