# Owl — reproduction of "Owl: Differential-based Side-Channel Leakage
# Detection for CUDA Applications" (DSN 2024). Stdlib-only Go; all targets
# run offline.

GO ?= go

.PHONY: all build test test-race bench tables paper fuzz fuzz-simt fuzz-mitigate examples cover clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/gpu/ ./internal/tracer/ ./internal/simt/ ./internal/core/ ./internal/mitigate/ ./internal/attack/ ./internal/evidence/ ./internal/stats/ ./internal/microarch/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
tables:
	$(GO) run ./cmd/owlbench -all

# The paper's 100+100 execution configuration.
paper:
	$(GO) run ./cmd/owlbench -all -paper

fuzz:
	$(GO) test -fuzz=FuzzCompile -fuzztime=30s ./internal/owlc/

# Differential fuzzing of the warp-vectorized SIMT interpreter against the
# per-lane reference implementation (random kernels; traces, memory,
# stats, and errors must match).
fuzz-simt:
	$(GO) test -fuzz=FuzzInterpEquivalence -fuzztime=60s ./internal/simt/

# Fuzz the repair pass: random OwlC kernels through the mitigation loop;
# any divergence between original and hardened programs (or a leak the
# applied transforms should have removed) is a transform bug.
fuzz-mitigate:
	$(GO) test -fuzz=FuzzMitigateEquivalence -fuzztime=60s ./internal/mitigate/

examples:
	@for e in quickstart aes rsa torch scalability attack owlc nvjpeg; do \
		echo "=== examples/$$e ==="; $(GO) run ./examples/$$e; echo; done

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
