package owl_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"owl"
)

// leakyTable is a minimal program written entirely against the public API:
// one thread looks up table[secret].
type leakyTable struct {
	kernel *owl.Kernel
}

func newLeakyTable(t *testing.T) *leakyTable {
	t.Helper()
	b := owl.NewKernelBuilder("lookup", 2) // table, secret
	table := b.Param(0)
	secret := b.Param(1)
	idx := b.And(secret, b.ConstR(63))
	b.Load(owl.Global, b.Add(table, idx), 0)
	b.Comment("secret-indexed lookup")
	b.Ret()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &leakyTable{kernel: k}
}

func (p *leakyTable) Name() string { return "public-api/lookup" }

func (p *leakyTable) Run(ctx *owl.Context, input []byte) error {
	table, err := ctx.Malloc(64)
	if err != nil {
		return err
	}
	var secret int64
	if len(input) > 0 {
		secret = int64(input[0])
	}
	return ctx.Launch(p.kernel, owl.D1(1), owl.D1(32), int64(table), secret)
}

func TestPublicAPIDetection(t *testing.T) {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 20, 20
	det, err := owl.NewDetector(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(r *rand.Rand) []byte { return []byte{byte(r.Intn(256))} }
	report, err := det.Detect(newLeakyTable(t), [][]byte{{3}, {40}}, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !report.PotentialLeak {
		t.Fatalf("no potential leak:\n%s", report.Summary())
	}
	if report.Count(owl.DataFlowLeak) == 0 {
		t.Fatalf("no data-flow leak:\n%s", report.Summary())
	}
	leak := report.ByKind(owl.DataFlowLeak)[0]
	if !strings.Contains(leak.Where, "secret-indexed lookup") {
		t.Errorf("leak not annotated: %+v", leak)
	}
	if !strings.Contains(leak.Location(), "lookup") {
		t.Errorf("location = %q", leak.Location())
	}
}

func TestPublicAPIRecordAndClassify(t *testing.T) {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 5, 5
	det, err := owl.NewDetector(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := newLeakyTable(t)
	tr, err := det.RecordOnce(p, []byte{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Invocations) != 1 || tr.SizeBytes() == 0 {
		t.Errorf("trace = %v", tr)
	}
	classes, err := det.Classify(p, [][]byte{{7}, {7}, {8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Errorf("classes = %d, want 2", len(classes))
	}
}

func TestPublicConstantsDistinct(t *testing.T) {
	kinds := map[owl.LeakKind]bool{
		owl.KernelLeak: true, owl.ControlFlowLeak: true, owl.DataFlowLeak: true,
	}
	if len(kinds) != 3 {
		t.Error("leak kinds collide")
	}
	spaces := map[owl.Space]bool{
		owl.Global: true, owl.Shared: true, owl.Constant: true, owl.Local: true,
	}
	if len(spaces) != 4 {
		t.Error("spaces collide")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := owl.DefaultOptions()
	if o.FixedRuns != 100 || o.RandomRuns != 100 {
		t.Errorf("runs = %d/%d, want 100/100 (§VIII-A)", o.FixedRuns, o.RandomRuns)
	}
	if o.Confidence != 0.95 {
		t.Errorf("confidence = %v, want 0.95", o.Confidence)
	}
	if !o.Rebase || !o.FilterDuplicates {
		t.Error("rebase and filtering must default on")
	}
}

// TestTraceRoundTrip proves the exported serialization helpers round-trip
// a recorded trace bit-exactly in both formats.
func TestTraceRoundTrip(t *testing.T) {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 2, 2
	det, err := owl.NewDetector(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := det.RecordOnce(newLeakyTable(t), []byte{9})
	if err != nil {
		t.Fatal(err)
	}

	var gobBuf bytes.Buffer
	if err := owl.EncodeTrace(&gobBuf, tr); err != nil {
		t.Fatal(err)
	}
	fromGob, err := owl.DecodeTrace(&gobBuf)
	if err != nil {
		t.Fatal(err)
	}
	if fromGob.Hash() != tr.Hash() {
		t.Error("gob round-trip changed the trace hash")
	}

	var jsonBuf bytes.Buffer
	if err := owl.EncodeTraceJSON(&jsonBuf, tr); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := owl.DecodeTraceJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Hash() != tr.Hash() {
		t.Error("JSON round-trip changed the trace hash")
	}

	if _, err := owl.DecodeTrace(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("DecodeTrace accepted garbage")
	}
}
