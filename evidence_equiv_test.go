package owl_test

import (
	"fmt"
	"sort"
	"testing"

	"owl/internal/core"
	"owl/internal/experiments"
)

// TestEarlyStopMatchesFixedRunVerdicts locks the sequential-testing
// acceptance bar from the evidence-engine redesign: on the aes128
// T-table target, the early-stopping statistical detector must reach
// the same screened leak-site verdicts as the fixed-budget diff
// detector while recording at least 30% fewer runs.
//
// The early-stop side runs in EvidenceBoth mode, so the leak verdicts
// themselves still come from the diff channel over the recorded prefix
// and the statistical channel only decides when that prefix is long
// enough. TVLAThreshold is set to 3 rather than the standard 4.5: the
// stop signal watches the *site-set* signature for stability, and a
// liberal threshold lets the weak tail of T-table sites cross within
// the first rounds instead of trickling in one by one — the signature
// saturates (and the controller stops) far earlier, without changing
// any verdict. With the standard 4.5 the run still stops and matches,
// just later; th=3/StableChecks=1 is the measured knee of the curve
// (40% of the budget saved at 40+40 runs/regime, seed 42).
func TestEarlyStopMatchesFixedRunVerdicts(t *testing.T) {
	target, err := experiments.FindTarget("libgpucrypto/aes128")
	if err != nil {
		t.Fatal(err)
	}
	baseOpts := func() core.Options {
		o := core.DefaultOptions()
		o.FixedRuns, o.RandomRuns = 40, 40
		o.Seed = 42
		return o
	}
	siteSet := func(r *core.Report) []string {
		var out []string
		for _, l := range r.Screened() {
			out = append(out, l.Kind.String()+"|"+l.Location())
		}
		sort.Strings(out)
		return out
	}

	fixed := baseOpts()
	df, err := core.NewDetector(fixed)
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := df.Detect(target.Program, target.Inputs, target.Gen)
	if err != nil {
		t.Fatal(err)
	}
	ref := siteSet(refRep)
	if len(ref) == 0 {
		t.Fatal("fixed-run diff detector found no leak sites on aes128; the equivalence bar is vacuous")
	}

	early := baseOpts()
	early.Evidence = core.EvidenceConfig{
		Mode:          core.EvidenceBoth,
		TVLAThreshold: 3,
		EarlyStop:     core.EarlyStopPolicy{Enabled: true, StableChecks: 1},
	}
	de, err := core.NewDetector(early)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := de.Detect(target.Program, target.Inputs, target.Gen)
	if err != nil {
		t.Fatal(err)
	}

	if got := siteSet(rep); fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Errorf("early-stop screened site set diverges from fixed-run diff:\n got %v\nwant %v", got, ref)
	}
	if !rep.EarlyStopped {
		t.Errorf("detector ran the full budget (%d/%d runs); expected an early stop", rep.RunsUsed, rep.RunsBudget)
	}
	if rep.RunsUsed > (rep.RunsBudget*7)/10 {
		t.Errorf("early stop saved too little: used %d of %d budgeted runs, want <= 70%%",
			rep.RunsUsed, rep.RunsBudget)
	}
	t.Logf("early stop: %d/%d runs recorded (%d saved), %d screened sites identical to fixed-run diff",
		rep.RunsUsed, rep.RunsBudget, rep.RunsSaved(), len(ref))
}
