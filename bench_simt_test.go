package owl_test

// BenchmarkWarpInterp measures raw SIMT-interpreter throughput on the
// Table IV kernels (aes128, rsa, jpeg encode): each iteration is one full
// untraced program execution on a fresh device, exactly the unit of work
// the detection pipeline repeats hundreds of times. Reported metrics:
//
//	simulated-MIPS — simulated instructions per wall-clock second
//	allocs/op      — allocations per execution (go test -benchmem)
//
// Results are also written to BENCH_simt.json for the CI bench artifact,
// alongside BENCH_streaming.json.

import (
	"encoding/json"
	"math/rand"
	"os"
	"sync"
	"testing"

	"owl/internal/cuda"
	"owl/internal/gpu"
	"owl/internal/workloads/gpucrypto"
	"owl/internal/workloads/jpeg"
)

var (
	warpInterpMu      sync.Mutex
	warpInterpResults = map[string]map[string]float64{}
)

func BenchmarkWarpInterp(b *testing.B) {
	cases := []struct {
		name  string
		prog  func() (cuda.Program, error)
		input []byte
	}{
		{
			name:  "aes128",
			prog:  func() (cuda.Program, error) { return gpucrypto.NewAES(gpucrypto.WithBlocks(16)), nil },
			input: []byte("0123456789abcdef"),
		},
		{
			name:  "rsa",
			prog:  func() (cuda.Program, error) { return gpucrypto.NewRSA(gpucrypto.WithMessages(16)), nil },
			input: []byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00},
		},
		{
			name: "jpeg-encode",
			prog: func() (cuda.Program, error) {
				enc, err := jpeg.NewEncoder(16, 16)
				return enc, err
			},
			input: jpeg.SynthImage(16, 16, 1),
		},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			p, err := tc.prog()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			var instrs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx, err := cuda.NewContext(gpu.DefaultConfig(), rng, nil)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Run(ctx, tc.input); err != nil {
					b.Fatal(err)
				}
				instrs += ctx.Stats().Instructions
				ctx.Close()
			}
			b.StopTimer()
			mips := float64(instrs) / b.Elapsed().Seconds() / 1e6
			b.ReportMetric(mips, "simulated-MIPS")
			warpInterpMu.Lock()
			warpInterpResults[tc.name] = map[string]float64{
				"simulated_mips":    mips,
				"instrs_per_exec":   float64(instrs) / float64(b.N),
				"ns_per_exec":       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				"executions_tested": float64(b.N),
			}
			warpInterpMu.Unlock()
		})
	}
	b.Cleanup(func() {
		warpInterpMu.Lock()
		defer warpInterpMu.Unlock()
		// Merge into any existing file so a filtered run (e.g.
		// -bench WarpInterp/aes128) refreshes only the workloads it
		// actually measured instead of discarding the rest.
		merged := map[string]map[string]float64{}
		if prev, err := os.ReadFile("BENCH_simt.json"); err == nil {
			_ = json.Unmarshal(prev, &merged)
		}
		for name, metrics := range warpInterpResults {
			merged[name] = metrics
		}
		out, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			b.Error(err)
			return
		}
		if err := os.WriteFile("BENCH_simt.json", out, 0o644); err != nil {
			b.Error(err)
		}
	})
}
