package owl_test

// TestWarpInterpAllocsCostOff pins the per-execution allocation counts of
// the untraced fast path. The microarchitectural cost channel rides the
// same interpreter, so this guard is what keeps cost-off runs paying
// nothing for it: a hook wired into the hot loop unconditionally, or a
// collector allocated per warp regardless of the channel list, shows up
// here as an extra alloc before it shows up as a benchgate regression.

import (
	"math/rand"
	"testing"

	"owl/internal/cuda"
	"owl/internal/gpu"
	"owl/internal/workloads/gpucrypto"
	"owl/internal/workloads/jpeg"
)

func TestWarpInterpAllocsCostOff(t *testing.T) {
	cases := []struct {
		name   string
		prog   func() (cuda.Program, error)
		input  []byte
		allocs float64
	}{
		{
			name:   "aes128",
			prog:   func() (cuda.Program, error) { return gpucrypto.NewAES(gpucrypto.WithBlocks(16)), nil },
			input:  []byte("0123456789abcdef"),
			allocs: 6,
		},
		{
			name:   "rsa",
			prog:   func() (cuda.Program, error) { return gpucrypto.NewRSA(gpucrypto.WithMessages(16)), nil },
			input:  []byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00},
			allocs: 7,
		},
		{
			name: "jpeg-encode",
			prog: func() (cuda.Program, error) {
				enc, err := jpeg.NewEncoder(16, 16)
				return enc, err
			},
			input:  jpeg.SynthImage(16, 16, 1),
			allocs: 17,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.prog()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			// Warm once so pool priming and lazy program caches do not
			// count against the steady state.
			warm, err := cuda.NewContext(gpu.DefaultConfig(), rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Run(warm, tc.input); err != nil {
				t.Fatal(err)
			}
			warm.Close()
			got := testing.AllocsPerRun(50, func() {
				ctx, err := cuda.NewContext(gpu.DefaultConfig(), rng, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Run(ctx, tc.input); err != nil {
					t.Fatal(err)
				}
				ctx.Close()
			})
			if got != tc.allocs {
				t.Errorf("allocs/exec = %v, want %v (cost-off fast path regressed)", got, tc.allocs)
			}
		})
	}
}
