package owl_test

// Golden-report equivalence: the interpreter rewrite (decode-once block
// programs, SoA registers, direct-memory fast paths) must be observationally
// invisible. These tests pin the full owl report — leaks, classes, trace
// sizes, A-DCFG-derived features — byte-for-byte against JSON captured from
// the pre-rewrite per-lane interpreter, for the aes/rsa/jpeg/textproc
// workloads at 1 and 4 trace-collection workers.
//
// Regenerate (only when an intentional analytic change lands) with:
//
//	go test -run TestGoldenReports -update .

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"owl"
	"owl/internal/core"
	"owl/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// canonicalReportJSON serializes a report with its run-dependent timing
// and memory statistics zeroed; every analytic field — leaks, classes,
// trace sizes — stays and is compared byte for byte.
func canonicalReportJSON(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	r := *rep
	r.Stats.TraceCollectTime = 0
	r.Stats.EvidenceTime = 0
	r.Stats.TestTime = 0
	r.Stats.Total = 0
	r.Stats.PeakAllocBytes = 0
	b, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// goldenPrograms is the workload set the acceptance criteria name. Small
// run counts keep the test affordable; determinism comes from the fixed
// seed and the merge-on-arrival reorder window.
var goldenPrograms = []string{
	"libgpucrypto/aes128",
	"libgpucrypto/rsa",
	"nvjpeg/encode",
	"media/tokenize",
}

func goldenPath(program string, workers int) string {
	safe := strings.ReplaceAll(program, "/", "_")
	return filepath.Join("testdata", "golden", safe+"-w"+string(rune('0'+workers))+".json")
}

// hardenedGoldenPrograms are the workloads whose automated repairs are
// pinned: the crypto kernels with hand-written countermeasure baselines.
var hardenedGoldenPrograms = []string{
	"libgpucrypto/aes128",
	"libgpucrypto/rsa",
}

func hardenedGoldenPath(program string, workers int) string {
	safe := strings.ReplaceAll(program, "/", "_")
	return filepath.Join("testdata", "golden", safe+"-hardened-w"+string(rune('0'+workers))+".json")
}

// TestGoldenHardenedReports locks the hardened side of the repair loop:
// the re-detection report of the automatically mitigated aes128/rsa
// programs must stay byte-identical at 1 and 4 trace-collection workers.
// Any change to the transform catalogue, the planning order, or the
// detection pipeline that shifts a hardened report shows up here.
func TestGoldenHardenedReports(t *testing.T) {
	if testing.Short() {
		t.Skip("hardened golden reports run two full detections plus equivalence checks")
	}
	for _, name := range hardenedGoldenPrograms {
		for _, workers := range []int{1, 4} {
			name, workers := name, workers
			t.Run(strings.ReplaceAll(name, "/", "_")+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				target, err := experiments.FindTarget(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.FixedRuns, opts.RandomRuns = 8, 8
				opts.Seed = 42
				opts.Workers = workers
				res, err := owl.Repair(context.Background(), target.Program, target.Inputs, target.Gen,
					owl.MitigateOptions{Detector: opts})
				if err != nil {
					t.Fatal(err)
				}
				if n := len(res.AfterSites); n != 0 {
					t.Fatalf("hardened %s still has %d leak site(s)", name, n)
				}
				got := canonicalReportJSON(t, res.After)
				path := hardenedGoldenPath(name, workers)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("hardened report for %s at workers=%d diverged from golden %s\ngot %d bytes, want %d bytes",
						name, workers, path, len(got), len(want))
				}
			})
		}
	}
}

func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden reports run full detections")
	}
	for _, name := range goldenPrograms {
		for _, workers := range []int{1, 4} {
			name, workers := name, workers
			t.Run(strings.ReplaceAll(name, "/", "_")+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				target, err := experiments.FindTarget(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.FixedRuns, opts.RandomRuns = 8, 8
				opts.Seed = 42
				opts.Workers = workers
				det, err := core.NewDetector(opts)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := det.Detect(target.Program, target.Inputs, target.Gen)
				if err != nil {
					t.Fatal(err)
				}
				got := canonicalReportJSON(t, rep)
				path := goldenPath(name, workers)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("report for %s at workers=%d diverged from pre-rewrite golden %s\ngot %d bytes, want %d bytes",
						name, workers, path, len(got), len(want))
				}
			})
		}
	}
}
