package owl_test

// Golden-report equivalence: the interpreter rewrite (decode-once block
// programs, SoA registers, direct-memory fast paths) must be observationally
// invisible. These tests pin the full owl report — leaks, classes, trace
// sizes, A-DCFG-derived features — byte-for-byte against JSON captured from
// the pre-rewrite per-lane interpreter, for the aes/rsa/jpeg/textproc
// workloads at 1 and 4 trace-collection workers.
//
// Regenerate (only when an intentional analytic change lands) with:
//
//	go test -run TestGoldenReports -update .

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"owl/internal/core"
	"owl/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// canonicalReportJSON serializes a report with its run-dependent timing
// and memory statistics zeroed; every analytic field — leaks, classes,
// trace sizes — stays and is compared byte for byte.
func canonicalReportJSON(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	r := *rep
	r.Stats.TraceCollectTime = 0
	r.Stats.EvidenceTime = 0
	r.Stats.TestTime = 0
	r.Stats.Total = 0
	r.Stats.PeakAllocBytes = 0
	b, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// goldenPrograms is the workload set the acceptance criteria name. Small
// run counts keep the test affordable; determinism comes from the fixed
// seed and the merge-on-arrival reorder window.
var goldenPrograms = []string{
	"libgpucrypto/aes128",
	"libgpucrypto/rsa",
	"nvjpeg/encode",
	"media/tokenize",
}

func goldenPath(program string, workers int) string {
	safe := strings.ReplaceAll(program, "/", "_")
	return filepath.Join("testdata", "golden", safe+"-w"+string(rune('0'+workers))+".json")
}

func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden reports run full detections")
	}
	for _, name := range goldenPrograms {
		for _, workers := range []int{1, 4} {
			name, workers := name, workers
			t.Run(strings.ReplaceAll(name, "/", "_")+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				target, err := experiments.FindTarget(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.FixedRuns, opts.RandomRuns = 8, 8
				opts.Seed = 42
				opts.Workers = workers
				det, err := core.NewDetector(opts)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := det.Detect(target.Program, target.Inputs, target.Gen)
				if err != nil {
					t.Fatal(err)
				}
				got := canonicalReportJSON(t, rep)
				path := goldenPath(name, workers)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("report for %s at workers=%d diverged from pre-rewrite golden %s\ngot %d bytes, want %d bytes",
						name, workers, path, len(got), len(want))
				}
			})
		}
	}
}
