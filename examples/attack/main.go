// Attack example: close the loop from detection to exploitation. Owl flags
// the AES T-table lookups (data flow) and the RSA multiply branch (control
// flow); this example plays the paper's threat-model attacker (§IV-B) and
// recovers the actual secrets from exactly those observations — then shows
// both countermeasures defeating the attacks.
//
//	go run ./examples/attack
package main

import (
	"bytes"
	"fmt"
	"log"

	"owl/internal/attack"
	"owl/internal/workloads/gpucrypto"
	"owl/internal/workloads/mlp"
)

func main() {
	// AES: recover the key from the first-round table indices.
	key := []byte("correct horse b@")
	recovered, err := attack.RecoverAESKey(gpucrypto.NewAES(gpucrypto.WithBlocks(4)), key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AES secret key:  %x\n", key)
	fmt.Printf("AES recovered:   %x  (match: %v)\n\n", recovered, bytes.Equal(recovered, key))

	// RSA: read the exponent bits out of the warp's block sequence.
	input := []byte{0x0d, 0xf0, 0xad, 0x8b, 0xef, 0xbe, 0xad, 0xde}
	wantExp := gpucrypto.ExponentFromInput(input)
	gotExp, err := attack.RecoverRSAExponent(gpucrypto.NewRSA(gpucrypto.WithMessages(4)), input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RSA secret exponent:  %#016x\n", wantExp)
	fmt.Printf("RSA recovered:        %#016x  (match: %v)\n\n", gotExp, gotExp == wantExp)

	// Model extraction (the paper's MEA motivation): the secret is an MLP
	// architecture; the launch trace alone reveals it.
	secret := []byte{2, 1, 0, 3, 1}
	want := mlp.DecodeArch(secret)
	got, err := attack.RecoverArchitecture(mlp.New(nil), secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MLP secret architecture:  %s\n", want)
	fmt.Printf("MLP recovered from launches: %s  (match: %v)\n\n", got, got.Equal(want))

	// Countermeasures (§IX): the same attacks against the hardened kernels.
	if sg, err := attack.RecoverAESKey(
		gpucrypto.NewAES(gpucrypto.WithBlocks(4), gpucrypto.WithScatterGather()), key); err != nil {
		fmt.Printf("scatter-gather AES: attack failed outright (%v)\n", err)
	} else {
		fmt.Printf("scatter-gather AES: attack recovers %x (match: %v)\n", sg, bytes.Equal(sg, key))
	}
	if _, err := attack.RecoverRSAExponent(
		gpucrypto.NewRSA(gpucrypto.WithMessages(4), gpucrypto.WithMontgomeryLadder()), input); err != nil {
		fmt.Printf("multiply-always RSA: attack failed outright (%v)\n", err)
	} else {
		fmt.Println("multiply-always RSA: unexpected — the ladder should hide the bits")
	}
}
