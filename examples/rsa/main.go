// RSA example: locate the square-and-multiply control-flow leak, then show
// the multiply-always ladder eliminating it.
//
//	go run ./examples/rsa
package main

import (
	"fmt"
	"log"

	"owl"
	"owl/internal/workloads/gpucrypto"
)

func main() {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 40, 40

	exponents := [][]byte{
		{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00},
		{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
	}

	detect := func(p owl.Program) *owl.Report {
		det, err := owl.NewDetector(opts)
		if err != nil {
			log.Fatal(err)
		}
		report, err := det.Detect(p, exponents, gpucrypto.ExpGen())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", p.Name())
		if !report.PotentialLeak {
			fmt.Println("no potential leakage: every exponent produced an identical trace")
			return report
		}
		for _, l := range report.Screened() {
			fmt.Printf("  [%s] %s ; %s\n", l.Kind, l.Location(), l.Detail)
		}
		return report
	}

	branchy := detect(gpucrypto.NewRSA(gpucrypto.WithMessages(16)))
	ladder := detect(gpucrypto.NewRSA(gpucrypto.WithMessages(16), gpucrypto.WithMontgomeryLadder()))

	fmt.Println()
	if branchy.ScreenedCount(owl.ControlFlowLeak) > 0 && !ladder.PotentialLeak {
		fmt.Println("The leak lives in the key-bit branch (rsa.multiply); the")
		fmt.Println("multiply-always ladder executes both operations every")
		fmt.Println("iteration, so the warp trace no longer depends on the key.")
	} else {
		fmt.Println("unexpected outcome — inspect the reports above")
	}
}
