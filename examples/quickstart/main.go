// Quickstart: define a toy CUDA program against the public API, then let
// Owl locate its leaks.
//
// The program compares a secret PIN digit-by-digit and bails out at the
// first mismatch — the classic early-exit side channel, here expressed as
// a device kernel. Owl flags the input-dependent control flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"owl"
)

// buildKernel emits:
//
//	for i in 0..8:
//	    if pin[i] != guess[i] { out[0] = i; return }   // early exit
//	out[0] = 8
func buildKernel() *owl.Kernel {
	b := owl.NewKernelBuilder("pin_check", 3) // pin, guess, out
	pin, guess, out := b.Param(0), b.Param(1), b.Param(2)
	b.ForConst(0, 8, func(i owl.Reg) {
		b.Label("pin.loop")
		p := b.Load(owl.Global, b.Add(pin, i), 0)
		b.Comment("secret pin digit")
		g := b.Load(owl.Global, b.Add(guess, i), 0)
		b.Comment("public guess digit")
		diff := b.CmpNE(p, g)
		b.If(diff, func() {
			b.Label("pin.mismatch")
			b.Store(owl.Global, out, 0, i)
			b.Ret() // early exit: iteration count leaks the match length
		}, nil)
	})
	eight := b.ConstR(8)
	b.Store(owl.Global, out, 0, eight)
	b.Ret()
	return b.MustBuild()
}

// pinProgram is the host side: upload the secret PIN and a fixed guess,
// launch one thread.
type pinProgram struct {
	kernel *owl.Kernel
}

func (p *pinProgram) Name() string { return "quickstart/pin-check" }

func (p *pinProgram) Run(ctx *owl.Context, input []byte) error {
	return ctx.Call("check_pin", func() error {
		pin := make([]int64, 8)
		for i := range pin {
			var b byte
			if len(input) > 0 {
				b = input[i%len(input)]
			}
			pin[i] = int64(b % 10)
		}
		pinPtr, err := ctx.Malloc(8)
		if err != nil {
			return err
		}
		guessPtr, err := ctx.Malloc(8)
		if err != nil {
			return err
		}
		outPtr, err := ctx.Malloc(1)
		if err != nil {
			return err
		}
		if err := ctx.MemcpyHtoD(pinPtr, pin); err != nil {
			return err
		}
		if err := ctx.MemcpyHtoD(guessPtr, []int64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			return err
		}
		if err := ctx.Launch(p.kernel, owl.D1(1), owl.D1(32),
			int64(pinPtr), int64(guessPtr), int64(outPtr)); err != nil {
			return err
		}
		_, err = ctx.MemcpyDtoH(outPtr, 1)
		return err
	})
}

func main() {
	det, err := owl.NewDetector(owl.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	program := &pinProgram{kernel: buildKernel()}

	// Phase 1+2 run on the user-provided secrets; phase 3 compares the
	// fixed representative against random PINs.
	userInputs := [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8}, // full match: loop runs to the end
		{9, 9, 9, 9, 9, 9, 9, 9}, // first digit differs: early exit
	}
	gen := func(r *rand.Rand) []byte {
		buf := make([]byte, 8)
		r.Read(buf)
		return buf
	}

	report, err := det.Detect(program, userInputs, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())
	fmt.Println("\nThe control-flow leaks above are the early-exit comparison:")
	for _, l := range report.Screened() {
		if l.Kind == owl.ControlFlowLeak {
			fmt.Printf("  %s (p=%.3g)\n", l.Location(), l.P)
		}
	}
}
