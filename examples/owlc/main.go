// OwlC example: write a CUDA-style kernel as source text, compile it with
// the built-in compiler, and let Owl analyze it. The kernel implements a
// (deliberately naive) substitution cipher whose table lookups leak the
// key; a second, "hardened" version uses only XOR and stays clean.
//
// The leaky source carries an `//owl:mitigate` pragma: when present, the
// driver hands the program to the automated repair pass after detection,
// which rewrites the secret-indexed lookup into an oblivious sweep and
// re-detects to prove the leak is gone.
//
//	go run ./examples/owlc
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"owl"
)

const leakySrc = `
//owl:mitigate
// Substitution cipher: ct[i] = sbox[pt[i] ^ key[i % 8]].
kernel subst(pt, key, sbox, ct, n) {
    if (tid < n) {
        var k = key[tid % 8];
        var x = pt[tid] ^ k;
        ct[tid] = sbox[x & 255];   // secret-indexed lookup: data-flow leak
    }
}
`

const hardenedSrc = `
// XOR cipher: no secret-dependent addressing, no branches on the key.
kernel xorenc(pt, key, sbox, ct, n) {
    if (tid < n) {
        var k = key[tid % 8];
        ct[tid] = pt[tid] ^ k;
    }
}
`

// cipher is a host program around one compiled kernel.
type cipher struct {
	name   string
	kernel *owl.Kernel
}

func (c *cipher) Name() string { return "owlc/" + c.name }

func (c *cipher) Run(ctx *owl.Context, input []byte) error {
	const n = 64
	return ctx.Call("encrypt", func() error {
		pt, err := ctx.Malloc(n)
		if err != nil {
			return err
		}
		key, err := ctx.Malloc(8)
		if err != nil {
			return err
		}
		sbox, err := ctx.Malloc(256)
		if err != nil {
			return err
		}
		ct, err := ctx.Malloc(n)
		if err != nil {
			return err
		}
		ptW := make([]int64, n)
		for i := range ptW {
			ptW[i] = int64((i*37 + 11) & 255) // public plaintext
		}
		keyW := make([]int64, 8)
		for i := range keyW {
			var b byte
			if len(input) > 0 {
				b = input[i%len(input)]
			}
			keyW[i] = int64(b)
		}
		sboxW := make([]int64, 256)
		for i := range sboxW {
			sboxW[i] = int64((i*167 + 13) & 255)
		}
		// Copy in a fixed order: differential verification compares the
		// host API event log run against run, so the program must be
		// deterministic (ranging over a map here would not be).
		for _, c := range []struct {
			ptr  owl.DevPtr
			data []int64
		}{{pt, ptW}, {key, keyW}, {sbox, sboxW}} {
			if err := ctx.MemcpyHtoD(c.ptr, c.data); err != nil {
				return err
			}
		}
		if err := ctx.Launch(c.kernel, owl.D1(1), owl.D1(n),
			int64(pt), int64(key), int64(sbox), int64(ct), n); err != nil {
			return err
		}
		_, err = ctx.MemcpyDtoH(ct, n)
		return err
	})
}

func main() {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 30, 30
	gen := func(r *rand.Rand) []byte {
		k := make([]byte, 8)
		r.Read(k)
		return k
	}
	inputs := [][]byte{[]byte("8bytekey"), []byte("another!")}

	for _, src := range []string{leakySrc, hardenedSrc} {
		kernel, err := owl.CompileKernel(src)
		if err != nil {
			log.Fatal(err)
		}
		pragmas, err := owl.ParseKernelPragmas(src)
		if err != nil {
			log.Fatal(err)
		}
		p := &cipher{name: kernel.Name, kernel: kernel}
		fmt.Printf("--- %s ---\n", p.Name())

		if pragmas.Mitigate {
			// The source opted into automated repair: detect, rewrite the
			// flagged sites, and re-detect on the hardened program.
			res, err := owl.Repair(context.Background(), p, inputs, gen, owl.MitigateOptions{Detector: opts})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("//owl:mitigate — %d leak site(s) before, %d after (%d transform(s) applied)\n",
				len(res.BeforeSites), len(res.AfterSites), res.Applied())
			for _, tr := range res.Transforms {
				fmt.Printf("  %s\n", tr)
			}
			fmt.Println()
			continue
		}

		det, err := owl.NewDetector(opts)
		if err != nil {
			log.Fatal(err)
		}
		report, err := det.Detect(p, inputs, gen)
		if err != nil {
			log.Fatal(err)
		}
		if !report.PotentialLeak {
			fmt.Println("leak-free: all keys produce identical traces")
		} else {
			for _, l := range report.Screened() {
				fmt.Printf("  [%s] %s ; %s\n", l.Kind, l.Location(), l.Where)
			}
		}
		fmt.Println()
	}
}
