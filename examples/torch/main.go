// Torch example: three findings from the paper's PyTorch evaluation.
//
//  1. Tensor.__repr__ leaks through the host: non-zero tensors trigger an
//     extra formatting kernel (kernel leakage).
//
//  2. maxpool2d does NOT leak control flow despite its per-element
//     conditional — CUDA predication (if-conversion) erases it, unlike the
//     CPU implementation the paper cites.
//
//  3. A static constant-time checker (pitchfork) flags that same predicated
//     conditional anyway: a false positive Owl avoids.
//
//     go run ./examples/torch
package main

import (
	"fmt"
	"log"

	"owl"
	"owl/internal/baseline/pitchfork"
	"owl/internal/workloads/torch"
)

func main() {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 40, 40
	lib := torch.NewLib()

	// 1. Tensor.__repr__.
	repr, err := torch.NewOp(lib, "repr", 16)
	if err != nil {
		log.Fatal(err)
	}
	det, err := owl.NewDetector(opts)
	if err != nil {
		log.Fatal(err)
	}
	report, err := det.Detect(repr,
		[][]byte{torch.ZeroTensorInput(16), {1, 2, 3, 4}}, torch.GenSparseBytes(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- Tensor.__repr__ ---")
	for _, l := range report.Screened() {
		if l.Kind == owl.KernelLeak {
			fmt.Printf("  kernel leak: %s (%s)\n", l.StackID, l.Detail)
		}
	}

	// 2. maxpool2d under Owl.
	maxpool, err := torch.NewOp(lib, "maxpool2d", 0)
	if err != nil {
		log.Fatal(err)
	}
	det2, err := owl.NewDetector(opts)
	if err != nil {
		log.Fatal(err)
	}
	mpReport, err := det2.Detect(maxpool,
		[][]byte{{1, 2, 3, 4}, {200, 150, 100, 50}}, torch.GenBytes(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- maxpool2d (Owl) ---")
	if !mpReport.PotentialLeak {
		fmt.Println("  leak-free: predication makes every warp trace identical,")
		fmt.Println("  matching the paper's finding for the CUDA implementation")
	} else {
		fmt.Printf("  unexpected: %d leaks\n%s", len(mpReport.Leaks), mpReport.Summary())
	}

	// 3. maxpool2d under pitchfork.
	fs, err := pitchfork.Analyze(lib.Module().MaxPool2d, pitchfork.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	c := pitchfork.Summarize(fs)
	fmt.Println("\n--- maxpool2d (pitchfork, static) ---")
	fmt.Printf("  %d control-flow + %d data-flow findings (%d tid-induced)\n",
		c.ControlFlow, c.DataFlow, c.TidOnly)
	for _, f := range fs {
		if f.Kind == pitchfork.ControlFlow && f.Instr >= 0 {
			fmt.Printf("  false positive: %s — %s\n", f.Location(), f.Why)
		}
	}
}
