// nvJPEG example: the paper's closed-source target. The encoder's entropy
// stage leaks the image through zero-run branches (control flow) and
// Huffman-length lookups (data flow); the decoder's dequantization and
// inverse DCT are constant-execution and stay clean — exactly the paper's
// Table III split between encoding and decoding.
//
//	go run ./examples/nvjpeg
package main

import (
	"fmt"
	"log"

	"owl"
	"owl/internal/workloads/jpeg"
)

func main() {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 40, 40

	detect := func(p owl.Program, inputs [][]byte, gen owl.InputGen) *owl.Report {
		det, err := owl.NewDetector(opts)
		if err != nil {
			log.Fatal(err)
		}
		report, err := det.Detect(p, inputs, gen)
		if err != nil {
			log.Fatal(err)
		}
		return report
	}

	enc, err := jpeg.NewEncoder(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	encReport := detect(enc, [][]byte{
		jpeg.SynthImage(16, 16, 1),
		jpeg.SynthImage(16, 16, 2),
	}, jpeg.GenImage(16, 16))
	fmt.Println("--- nvjpeg/encode ---")
	fmt.Printf("screened leaks: %d control-flow, %d data-flow\n",
		encReport.ScreenedCount(owl.ControlFlowLeak),
		encReport.ScreenedCount(owl.DataFlowLeak))
	for i, l := range encReport.Screened() {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(encReport.Screened())-4)
			break
		}
		fmt.Printf("  [%s] %s", l.Kind, l.Location())
		if l.Where != "" {
			fmt.Printf(" ; %s", l.Where)
		}
		fmt.Println()
	}

	dec, err := jpeg.NewDecoder(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	decReport := detect(dec, [][]byte{
		jpeg.SynthImage(8, 8, 3),
		jpeg.SynthImage(8, 8, 4),
	}, jpeg.GenImage(8, 8))
	fmt.Println("\n--- nvjpeg/decode ---")
	if !decReport.PotentialLeak {
		fmt.Println("leak-free: dequantization and inverse DCT are constant-execution,")
		fmt.Println("matching the paper's zero findings for the decoding path")
	} else {
		fmt.Printf("unexpected: %d leaks\n%s", len(decReport.Leaks), decReport.Summary())
	}
}
