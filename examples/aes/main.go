// AES example: detect the T-table data-flow leaks in the Libgpucrypto-style
// AES-128 kernel, then show the scatter-gather countermeasure (§IX)
// removing them at a measurable throughput cost.
//
//	go run ./examples/aes
package main

import (
	"fmt"
	"log"
	"time"

	"owl"
	"owl/internal/workloads/gpucrypto"
)

func main() {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 40, 40

	keys := [][]byte{
		[]byte("0123456789abcdef"),
		[]byte("fedcba9876543210"),
	}

	detect := func(p owl.Program) *owl.Report {
		det, err := owl.NewDetector(opts)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		report, err := det.Detect(p, keys, gpucrypto.KeyGen())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (%.1fs) ---\n", p.Name(), time.Since(start).Seconds())
		fmt.Printf("leaks (screened): %d kernel, %d control-flow, %d data-flow\n",
			report.ScreenedCount(owl.KernelLeak),
			report.ScreenedCount(owl.ControlFlowLeak),
			report.ScreenedCount(owl.DataFlowLeak))
		for i, l := range report.Screened() {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(report.Screened())-5)
				break
			}
			fmt.Printf("  [%s] %s ; %s\n", l.Kind, l.Location(), l.Where)
		}
		return report
	}

	leaky := detect(gpucrypto.NewAES(gpucrypto.WithBlocks(16)))
	fixed := detect(gpucrypto.NewAES(gpucrypto.WithBlocks(16), gpucrypto.WithScatterGather()))

	fmt.Println()
	switch {
	case leaky.ScreenedCount(owl.DataFlowLeak) == 0:
		fmt.Println("unexpected: the T-table kernel shows no data-flow leak")
	case fixed.PotentialLeak:
		fmt.Println("unexpected: the scatter-gather kernel still differs across keys")
	default:
		fmt.Println("Scatter-gather removed every key-dependent table access:")
		fmt.Println("all keys now produce identical traces (one input class).")
	}
}
