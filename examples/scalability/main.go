// Scalability example (RQ2 / Fig. 5): sweep input sizes, record trace
// sizes for the three growth patterns, and contrast Owl's A-DCFG
// aggregation with DATA's per-thread recording.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"math/rand"

	"owl/internal/baseline/data"
	"owl/internal/cuda"
	"owl/internal/experiments"
	"owl/internal/gpu"
	"owl/internal/workloads/dummy"
)

func main() {
	points, err := experiments.Fig5(experiments.QuickConfig(), []int{64, 256, 1024, 4096})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFig5(points))

	fmt.Println("\nA-DCFG aggregation vs DATA per-thread recording (dummy program):")
	fmt.Printf("%-10s  %-14s  %-18s\n", "threads", "Owl bytes", "per-thread bytes")
	for _, n := range []int{64, 256, 1024, 4096} {
		input := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(input)

		// Owl's aggregated trace.
		var owlBytes int
		for _, p := range points {
			if p.Series == "dummy (s-box)" && p.InputSize == n {
				owlBytes = p.TraceBytes
			}
		}

		// DATA's per-thread trace of the same execution.
		tr := &data.PerThreadTracer{}
		ctx, err := cuda.NewContext(gpu.DefaultConfig(), rand.New(rand.NewSource(1)), tr)
		if err != nil {
			log.Fatal(err)
		}
		if err := dummy.New().Run(ctx, input); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d  %-14d  %-18d\n", n, owlBytes, tr.Bytes())
	}
	fmt.Println("\nOwl's trace saturates once the bounded tables are covered;")
	fmt.Println("per-thread recording keeps growing linearly with the thread count.")
}
