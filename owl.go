// Package owl is a differential side-channel leakage detector for CUDA
// applications, reproducing "Owl: Differential-based Side-Channel Leakage
// Detection for CUDA Applications" (DSN 2024) on a pure-Go SIMT simulator.
//
// A program under test is host code (a Program) that allocates device
// memory and launches device kernels on a Context, exactly as a CUDA
// application does. Owl records each execution into one A-DCFG per kernel
// invocation, classes user inputs by trace equality, and statistically
// compares fixed-input evidence against random-input evidence with
// Kolmogorov-Smirnov tests to locate three kinds of GPU leakage: kernel
// leaks (input-dependent launches), device control-flow leaks, and device
// data-flow leaks.
//
// Quick start:
//
//	det, err := owl.NewDetector(owl.DefaultOptions())
//	...
//	report, err := det.Detect(program, userInputs, randomInputGen)
//	fmt.Print(report.Summary())
//
// Kernels for custom programs are written against the device ISA with the
// Builder, and executed by the simulated GPU behind the Context — see
// examples/quickstart.
package owl

import (
	"context"
	"io"

	"owl/internal/core"
	"owl/internal/cuda"
	"owl/internal/gpu"
	"owl/internal/isa"
	"owl/internal/kbuild"
	"owl/internal/mitigate"
	"owl/internal/owlc"
	"owl/internal/trace"
)

// Program is a CUDA application under test: host code that drives device
// kernels through a Context. The input passed to Run is the secret input
// of the paper's threat model.
type Program = cuda.Program

// InputGen draws random secret inputs during the leakage-analysis phase.
type InputGen = cuda.InputGen

// Context is the host-side CUDA runtime handle (Malloc / Memcpy / Launch /
// Call for host stack frames / Rand for program non-determinism).
type Context = cuda.Context

// Options configures a Detector; start from DefaultOptions.
type Options = core.Options

// Progress is one pipeline progress observation delivered to
// Options.OnProgress: the current phase plus class and execution counters.
type Progress = core.Progress

// Pipeline phases reported via Options.OnProgress.
const (
	PhaseClassify = core.PhaseClassify
	PhaseRecord   = core.PhaseRecord
	PhaseAnalyze  = core.PhaseAnalyze
)

// Runner streams instrumented executions for the pipeline: each recorded
// trace is delivered to a TraceSink the moment its run completes, and the
// pipeline merges it through a reorder window keyed by request index so
// reports stay bit-identical to sequential recording. Options.Runner lets
// callers supply a shared worker pool (see internal/service for the
// daemon's bounded pool); the default runner honors Options.Workers. The
// two fields are mutually exclusive — NewDetector rejects setting both.
type Runner = core.Runner

// RunRequest is one recording request handed to a Runner.
type RunRequest = core.RunRequest

// RunResult pairs a recorded trace with its request index for delivery
// to a TraceSink.
type RunResult = core.RunResult

// TraceSink receives traces from a Runner as runs complete. Ownership of
// each delivered trace transfers to the sink.
type TraceSink = core.TraceSink

// RecordFn executes one instrumented run; safe for concurrent use.
type RecordFn = core.RecordFn

// EvidenceConfig selects and configures the evidence channel(s) via
// Options.Evidence: the paper's set-difference channel ("diff", the
// default), the streaming statistical channel ("tvla": Welch's t with the
// TVLA |t| > 4.5 rule plus per-site mutual information), or "both" — and
// sequential early stopping of the recording phase.
type EvidenceConfig = core.EvidenceConfig

// EvidenceMode names an evidence channel selection.
type EvidenceMode = core.EvidenceMode

// Evidence channel modes for EvidenceConfig.Mode.
const (
	EvidenceDiff = core.EvidenceDiff
	EvidenceTVLA = core.EvidenceTVLA
	EvidenceBoth = core.EvidenceBoth
)

// EarlyStopPolicy configures sequential early stopping: recording
// proceeds in rounds and cancels the remaining run budget once every
// site's statistical verdict has stabilized.
type EarlyStopPolicy = core.EarlyStopPolicy

// Typed option-validation errors.
var (
	// ErrInvalidRunCount reports a zero, negative, or sub-minimum run
	// count in Options.FixedRuns/RandomRuns.
	ErrInvalidRunCount = core.ErrInvalidRunCount
	// ErrInvalidEvidenceConfig reports an unusable Options.Evidence.
	ErrInvalidEvidenceConfig = core.ErrInvalidEvidenceConfig
)

// Report is the outcome of a detection, with located leaks and the
// phase statistics of Table IV.
type Report = core.Report

// Leak is one located leak.
type Leak = core.Leak

// LeakKind classifies a leak.
type LeakKind = core.LeakKind

// Leak kinds (§IV-A): input-dependent kernel launches, device control-flow
// leakage, and device data-flow leakage.
const (
	KernelLeak      = core.KernelLeak
	ControlFlowLeak = core.ControlFlowLeak
	DataFlowLeak    = core.DataFlowLeak
)

// InputClass is one group of inputs with identical traces (phase 2).
type InputClass = core.InputClass

// Detector runs the three-phase Owl pipeline.
type Detector = core.Detector

// ProgramTrace is one recorded execution (phase 1 output).
type ProgramTrace = trace.ProgramTrace

// Kernel is a compiled device function.
type Kernel = isa.Kernel

// Builder emits device kernels with structured control flow.
type Builder = kbuild.Builder

// Reg is a device virtual register.
type Reg = isa.Reg

// Space identifies a device memory space.
type Space = isa.Space

// Device memory spaces.
const (
	Global   = isa.SpaceGlobal
	Shared   = isa.SpaceShared
	Constant = isa.SpaceConstant
	Local    = isa.SpaceLocal
)

// DeviceConfig sizes the simulated GPU.
type DeviceConfig = gpu.Config

// Dim3 is a CUDA grid/block extent.
type Dim3 = gpu.Dim3

// DevPtr is a device pointer.
type DevPtr = cuda.DevPtr

// NewDetector validates options and returns a detector. Detector.Detect
// runs to completion; Detector.DetectContext additionally honors
// cancellation and deadlines, aborting between instrumented executions —
// plain Detect delegates to it with context.Background().
func NewDetector(opts Options) (*Detector, error) { return core.NewDetector(opts) }

// DefaultOptions mirrors the paper's evaluation setup: 100 fixed and 100
// random executions per input class at confidence 0.95.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewKernelBuilder starts a device kernel with the given name and
// parameter count.
func NewKernelBuilder(name string, numParams int) *Builder {
	return kbuild.New(name, numParams)
}

// CompileKernel compiles OwlC source — a small CUDA-C-like kernel language
// (see internal/owlc) — to a device kernel:
//
//	k, err := owl.CompileKernel(`
//	    kernel scale(in, out, n) {
//	        if (tid < n) { out[tid] = in[tid] * 2; }
//	    }
//	`)
func CompileKernel(src string) (*Kernel, error) { return owlc.Compile(src) }

// LeakSite is the machine-readable form of one screened leak location,
// the stable contract exported by Report.Sites and consumed by the
// mitigation pass and external tooling.
type LeakSite = core.LeakSite

// MitigateOptions configures an automated repair (see Repair).
type MitigateOptions = mitigate.Options

// MitigateResult is the outcome of one repair: the transform log, the
// before/after leak-site diff, and the hardened kernel definitions.
type MitigateResult = mitigate.Result

// MitigateTransform records one attempted repair transform.
type MitigateTransform = mitigate.Transform

// ErrNotEquivalent reports that a hardened program diverged from the
// original under differential execution; Repair never returns a result in
// that state.
var ErrNotEquivalent = mitigate.ErrNotEquivalent

// Repair runs the automated leakage-repair loop on a program: detect,
// rewrite the flagged sites (if-conversion of secret-dependent branches,
// oblivious sweeps of secret-indexed loads), and verify each transform by
// differential execution plus a fresh detection on the hardened program.
func Repair(ctx context.Context, p Program, inputs [][]byte, gen InputGen, opts MitigateOptions) (*MitigateResult, error) {
	return mitigate.Repair(ctx, p, inputs, gen, opts)
}

// HardenProgram wraps a program so launches of the named kernels use the
// given (typically repaired) definitions instead, leaving host code and
// launch identities untouched.
func HardenProgram(p Program, kernels map[string]*Kernel) Program {
	return mitigate.Harden(p, kernels)
}

// Pragmas are `//owl:` directive comments carried by OwlC kernel source.
type Pragmas = owlc.Pragmas

// ParseKernelPragmas extracts `//owl:` directives (e.g. `//owl:mitigate`)
// from OwlC source; unknown directives are errors.
func ParseKernelPragmas(src string) (Pragmas, error) { return owlc.ParsePragmas(src) }

// EncodeTrace writes a recorded trace in its compact binary (gob) form,
// the format used for trace archives and replay.
func EncodeTrace(w io.Writer, t *ProgramTrace) error { return t.WriteGob(w) }

// DecodeTrace reads a binary (gob) trace written by EncodeTrace.
func DecodeTrace(r io.Reader) (*ProgramTrace, error) { return trace.ReadGob(r) }

// EncodeTraceJSON writes a recorded trace as indented JSON, the
// interchange format.
func EncodeTraceJSON(w io.Writer, t *ProgramTrace) error { return t.WriteJSON(w) }

// DecodeTraceJSON reads a JSON trace written by EncodeTraceJSON.
func DecodeTraceJSON(r io.Reader) (*ProgramTrace, error) { return trace.ReadJSON(r) }

// D1 builds a one-dimensional Dim3.
func D1(x int) Dim3 { return gpu.D1(x) }

// DefaultDeviceConfig returns the default simulated-GPU sizing.
func DefaultDeviceConfig() DeviceConfig { return gpu.DefaultConfig() }
