// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VIII), plus the ablations called out in DESIGN.md §5. Each benchmark
// measures one artifact end-to-end and reports domain metrics
// (leaks found, trace bytes, classes) alongside ns/op:
//
//	go test -bench=. -benchmem
package owl_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"owl/internal/baseline/data"
	"owl/internal/baseline/pitchfork"
	"owl/internal/coalesce"
	"owl/internal/core"
	"owl/internal/cuda"
	"owl/internal/experiments"
	"owl/internal/gpu"
	"owl/internal/owlc"
	"owl/internal/quantify"
	"owl/internal/trace"
	"owl/internal/workloads/dummy"
	"owl/internal/workloads/gpucrypto"
	"owl/internal/workloads/jpeg"
	"owl/internal/workloads/torch"
)

// benchConfig keeps benchmark iterations affordable while exercising the
// full pipeline; `owlbench -paper` runs the 100+100 configuration.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.FixedRuns, cfg.RandomRuns = 10, 10
	return cfg
}

func benchOptions() core.Options {
	o := core.DefaultOptions()
	o.FixedRuns, o.RandomRuns = 10, 10
	return o
}

func detect(b *testing.B, opts core.Options, p cuda.Program, inputs [][]byte, gen cuda.InputGen) *core.Report {
	b.Helper()
	det, err := core.NewDetector(opts)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := det.Detect(p, inputs, gen)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkTable1Capabilities renders the capability matrix (static data
// plus the live DATA/pitchfork/Owl rows).
func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.RenderTable1(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Platform renders the platform parameters.
func BenchmarkTable2Platform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.RenderTable2(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Table III per-program benchmarks: one per evaluated group, measuring the
// full three-phase detection.

func BenchmarkTable3AES(b *testing.B) {
	p := gpucrypto.NewAES(gpucrypto.WithBlocks(16))
	inputs := [][]byte{[]byte("0123456789abcdef"), []byte("fedcba9876543210")}
	var leaks int
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), p, inputs, gpucrypto.KeyGen())
		leaks = rep.Count(core.DataFlowLeak)
	}
	b.ReportMetric(float64(leaks), "df-leaks")
}

func BenchmarkTable3RSA(b *testing.B) {
	p := gpucrypto.NewRSA(gpucrypto.WithMessages(16))
	inputs := [][]byte{{0xff, 0, 0xff, 0}, {1, 2, 3, 4}}
	var leaks int
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), p, inputs, gpucrypto.ExpGen())
		leaks = rep.Count(core.ControlFlowLeak)
	}
	b.ReportMetric(float64(leaks), "cf-leaks")
}

func BenchmarkTable3TorchRepr(b *testing.B) {
	p, err := torch.NewOp(nil, "repr", 16)
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]byte{torch.ZeroTensorInput(16), {1, 2, 3, 4}}
	var leaks int
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), p, inputs, torch.GenSparseBytes(16))
		leaks = rep.Count(core.KernelLeak)
	}
	b.ReportMetric(float64(leaks), "kernel-leaks")
}

func BenchmarkTable3TorchNumeric(b *testing.B) {
	// A leak-free function ends at phase 2: the cheap path of Table III.
	p, err := torch.NewOp(nil, "relu", 0)
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]byte{{1, 2, 3, 4}, {4, 3, 2, 1}}
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), p, inputs, torch.GenBytes(4))
		if rep.PotentialLeak {
			b.Fatal("relu flagged as leaky")
		}
	}
}

func BenchmarkTable3JPEGEncode(b *testing.B) {
	enc, err := jpeg.NewEncoder(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]byte{jpeg.SynthImage(8, 8, 1), jpeg.SynthImage(8, 8, 2)}
	var cf, df int
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), enc, inputs, jpeg.GenImage(8, 8))
		cf, df = rep.Count(core.ControlFlowLeak), rep.Count(core.DataFlowLeak)
	}
	b.ReportMetric(float64(cf), "cf-leaks")
	b.ReportMetric(float64(df), "df-leaks")
}

func BenchmarkTable3JPEGDecode(b *testing.B) {
	dec, err := jpeg.NewDecoder(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]byte{jpeg.SynthImage(8, 8, 1), jpeg.SynthImage(8, 8, 2)}
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), dec, inputs, jpeg.GenImage(8, 8))
		if rep.PotentialLeak {
			b.Fatal("decode flagged as leaky")
		}
	}
}

// Table IV phase benchmarks: the per-phase costs reported in the table.

func BenchmarkTable4TraceCollection(b *testing.B) {
	det, err := core.NewDetector(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := gpucrypto.NewAES(gpucrypto.WithBlocks(16))
	key := []byte("0123456789abcdef")
	var bytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := det.RecordOnce(p, key)
		if err != nil {
			b.Fatal(err)
		}
		bytes = tr.SizeBytes()
	}
	b.ReportMetric(float64(bytes), "trace-bytes")
}

func BenchmarkTable4EvidenceCollection(b *testing.B) {
	det, err := core.NewDetector(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := gpucrypto.NewAES(gpucrypto.WithBlocks(16))
	var pre []*trace.ProgramTrace
	for i := 0; i < 10; i++ {
		tr, err := det.RecordOnce(p, []byte("0123456789abcdef"))
		if err != nil {
			b.Fatal(err)
		}
		pre = append(pre, tr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := core.NewEvidence()
		for _, t := range pre {
			ev.AddRun(t)
		}
	}
}

func BenchmarkTable4DistributionTest(b *testing.B) {
	// End-to-end minus recording dominates the test; measured via a tiny
	// detection on the dummy program where tracing is cheap.
	p := dummy.New()
	inputs := [][]byte{{1, 2}, {3, 4}}
	var testMS float64
	for i := 0; i < b.N; i++ {
		rep := detect(b, benchOptions(), p, inputs, dummy.Gen(2))
		testMS = float64(rep.Stats.TestTime.Microseconds()) / 1000
	}
	b.ReportMetric(testMS, "test-ms")
}

// materializingRunner is the pre-streaming recording strategy: the whole
// batch is recorded and held in memory before any trace reaches the sink.
// It reproduces the old O(runs) evidence-phase memory profile behind the
// streaming Runner contract.
type materializingRunner struct{}

func (materializingRunner) RecordStream(ctx context.Context, p cuda.Program, reqs []core.RunRequest, record core.RecordFn, sink core.TraceSink) error {
	out := make([]*trace.ProgramTrace, len(reqs))
	for i, req := range reqs {
		t, err := record(ctx, p, req.Input, req.Seed)
		if err != nil {
			return err
		}
		out[i] = t
	}
	for i, t := range out {
		if err := sink(ctx, core.RunResult{Index: reqs[i].Index, Trace: t}); err != nil {
			return err
		}
	}
	return nil
}

var (
	streamingBenchMu      sync.Mutex
	streamingBenchResults = map[string]map[string]float64{}
)

// BenchmarkTable4StreamingVsBatch compares the streaming merge-on-arrival
// pipeline against the legacy materialize-then-merge batch contract on the
// Table IV workload (aes128), reporting peak live heap and evidence time.
// Results are also written to BENCH_streaming.json for the CI artifact.
func BenchmarkTable4StreamingVsBatch(b *testing.B) {
	p := func() cuda.Program { return gpucrypto.NewAES(gpucrypto.WithBlocks(16)) }
	inputs := [][]byte{[]byte("0123456789abcdef"), []byte("fedcba9876543210")}
	modes := []struct {
		name string
		opts func() core.Options
	}{
		{"streaming-workers-4", func() core.Options {
			o := benchOptions()
			o.FixedRuns, o.RandomRuns = 40, 40
			o.Workers = 4
			return o
		}},
		{"legacy-batch", func() core.Options {
			o := benchOptions()
			o.FixedRuns, o.RandomRuns = 40, 40
			o.Runner = materializingRunner{}
			return o
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				rep = detect(b, mode.opts(), p(), inputs, gpucrypto.KeyGen())
			}
			peak := float64(rep.Stats.PeakAllocBytes)
			evMS := float64(rep.Stats.EvidenceTime.Microseconds()) / 1000
			b.ReportMetric(peak, "peak-alloc-bytes")
			b.ReportMetric(evMS, "evidence-ms")
			streamingBenchMu.Lock()
			streamingBenchResults[mode.name] = map[string]float64{
				"peak_alloc_bytes": peak,
				"evidence_ms":      evMS,
				"leaks":            float64(len(rep.Leaks)),
			}
			streamingBenchMu.Unlock()
		})
	}
	b.Cleanup(func() {
		streamingBenchMu.Lock()
		defer streamingBenchMu.Unlock()
		out, err := json.MarshalIndent(streamingBenchResults, "", "  ")
		if err != nil {
			b.Error(err)
			return
		}
		if err := os.WriteFile("BENCH_streaming.json", out, 0o644); err != nil {
			b.Error(err)
		}
	})
}

var (
	evidenceBenchMu      sync.Mutex
	evidenceBenchResults = map[string]map[string]float64{}
)

// BenchmarkEvidenceEarlyStop compares the fixed-budget diff detector
// against the sequential early-stopping statistical detector on aes128
// at equal verdicts, reporting runs recorded and wall time per
// detection. Results are also written to BENCH_evidence.json for the CI
// artifact; the equal-verdict guarantee itself is locked by
// TestEarlyStopMatchesFixedRunVerdicts.
func BenchmarkEvidenceEarlyStop(b *testing.B) {
	target, err := experiments.FindTarget("libgpucrypto/aes128")
	if err != nil {
		b.Fatal(err)
	}
	base := func() core.Options {
		o := core.DefaultOptions()
		o.FixedRuns, o.RandomRuns = 40, 40
		o.Seed = 42
		return o
	}
	modes := []struct {
		name string
		opts func() core.Options
	}{
		{"fixed-runs-diff", base},
		{"early-stop-both", func() core.Options {
			o := base()
			o.Evidence = core.EvidenceConfig{
				Mode:          core.EvidenceBoth,
				TVLAThreshold: 3,
				EarlyStop:     core.EarlyStopPolicy{Enabled: true, StableChecks: 1},
			}
			return o
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var rep *core.Report
			start := time.Now()
			for i := 0; i < b.N; i++ {
				rep = detect(b, mode.opts(), target.Program, target.Inputs, target.Gen)
			}
			wallMS := float64(time.Since(start).Microseconds()) / 1000 / float64(b.N)
			used, budget := rep.RunsUsed, rep.RunsBudget
			if used == 0 { // diff mode records the whole fixed budget
				used, budget = rep.Stats.EvidenceTraces, rep.Stats.EvidenceTraces
			}
			b.ReportMetric(float64(used), "runs-used")
			b.ReportMetric(wallMS, "wall-ms")
			evidenceBenchMu.Lock()
			evidenceBenchResults[mode.name] = map[string]float64{
				"runs_used":   float64(used),
				"runs_budget": float64(budget),
				"wall_ms":     wallMS,
				"leaks":       float64(len(rep.Leaks)),
				"early_stop":  b2f(rep.EarlyStopped),
			}
			evidenceBenchMu.Unlock()
		})
	}
	b.Cleanup(func() {
		evidenceBenchMu.Lock()
		defer evidenceBenchMu.Unlock()
		out, err := json.MarshalIndent(evidenceBenchResults, "", "  ")
		if err != nil {
			b.Error(err)
			return
		}
		if err := os.WriteFile("BENCH_evidence.json", out, 0o644); err != nil {
			b.Error(err)
		}
	})
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkFig5 sweeps the trace-size growth measurement.
func BenchmarkFig5TraceGrowth(b *testing.B) {
	var last int
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig5(benchConfig(), []int{64, 512})
		if err != nil {
			b.Fatal(err)
		}
		last = points[len(points)-1].TraceBytes
	}
	b.ReportMetric(float64(last), "trace-bytes")
}

// BenchmarkRQ3 baselines.

func BenchmarkRQ3DATA(b *testing.B) {
	d, err := data.New(data.Options{Runs: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p, err := torch.NewOp(nil, "repr", 16)
	if err != nil {
		b.Fatal(err)
	}
	var leaks int
	for i := 0; i < b.N; i++ {
		rep, err := d.Detect(p, torch.ZeroTensorInput(16), torch.GenSparseBytes(16))
		if err != nil {
			b.Fatal(err)
		}
		leaks = len(rep.HostLeaks)
	}
	b.ReportMetric(float64(leaks), "host-leaks")
}

func BenchmarkRQ3Pitchfork(b *testing.B) {
	k := gpucrypto.NewAES().Kernel()
	var findings int
	for i := 0; i < b.N; i++ {
		fs, err := pitchfork.Analyze(k, pitchfork.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		findings = len(fs)
	}
	b.ReportMetric(float64(findings), "findings")
}

// Ablation benchmarks (DESIGN.md §5).

// BenchmarkAblationWelch compares the KS and Welch test paths.
func BenchmarkAblationWelch(b *testing.B) {
	inputs := [][]byte{{200, 200}, {1, 1}}
	for _, mode := range []struct {
		name  string
		welch bool
	}{{"KS", false}, {"Welch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			o := benchOptions()
			o.UseWelch = mode.welch
			var leaks int
			for i := 0; i < b.N; i++ {
				rep := detect(b, o, dummy.New(), inputs, dummy.Gen(2))
				leaks = rep.Count(core.DataFlowLeak)
			}
			b.ReportMetric(float64(leaks), "df-leaks")
		})
	}
}

// BenchmarkAblationPerThread compares A-DCFG aggregation against DATA's
// per-thread recording at growing thread counts.
func BenchmarkAblationPerThread(b *testing.B) {
	for _, threads := range []int{256, 2048} {
		input := make([]byte, threads)
		rand.New(rand.NewSource(int64(threads))).Read(input)
		b.Run("owl/"+strconv.Itoa(threads), func(b *testing.B) {
			det, err := core.NewDetector(benchOptions())
			if err != nil {
				b.Fatal(err)
			}
			var bytes int
			for i := 0; i < b.N; i++ {
				tr, err := det.RecordOnce(dummy.New(), input)
				if err != nil {
					b.Fatal(err)
				}
				bytes = tr.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "trace-bytes")
		})
		b.Run("perthread/"+strconv.Itoa(threads), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				tr := &data.PerThreadTracer{}
				ctx, err := cuda.NewContext(gpu.DefaultConfig(), rand.New(rand.NewSource(1)), tr)
				if err != nil {
					b.Fatal(err)
				}
				if err := dummy.New().Run(ctx, input); err != nil {
					b.Fatal(err)
				}
				bytes = tr.Bytes()
			}
			b.ReportMetric(float64(bytes), "trace-bytes")
		})
	}
}

// BenchmarkAblationASLR measures the classing cost of disabling address
// rebasing under ASLR.
func BenchmarkAblationASLR(b *testing.B) {
	inputs := [][]byte{{1}, {1}, {1}}
	for _, mode := range []struct {
		name   string
		rebase bool
	}{{"rebased", true}, {"raw", false}} {
		b.Run(mode.name, func(b *testing.B) {
			o := benchOptions()
			o.Device.ASLR = true
			o.Rebase = mode.rebase
			var classes int
			for i := 0; i < b.N; i++ {
				rep := detect(b, o, dummy.New(), inputs, dummy.Gen(1))
				classes = rep.Classes
			}
			b.ReportMetric(float64(classes), "classes")
		})
	}
}

// BenchmarkAblationFiltering measures the duplicates-removing phase's
// saving on redundant inputs.
func BenchmarkAblationFiltering(b *testing.B) {
	in := []byte{9, 9}
	inputs := [][]byte{in, in, in, in}
	for _, mode := range []struct {
		name   string
		filter bool
	}{{"filtered", true}, {"unfiltered", false}} {
		b.Run(mode.name, func(b *testing.B) {
			o := benchOptions()
			o.FilterDuplicates = mode.filter
			var evidence int
			for i := 0; i < b.N; i++ {
				rep := detect(b, o, dummy.New(), inputs, dummy.Gen(2))
				evidence = rep.Stats.EvidenceTraces
			}
			b.ReportMetric(float64(evidence), "evidence-traces")
		})
	}
}

// BenchmarkQuantify measures the leakage-quantification extension.
func BenchmarkQuantify(b *testing.B) {
	det, err := core.NewDetector(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := dummy.New()
	var maxJSD float64
	for i := 0; i < b.N; i++ {
		rep, err := quantify.Quantify(det, p, []byte{1, 2, 3}, dummy.Gen(3), 10)
		if err != nil {
			b.Fatal(err)
		}
		maxJSD = rep.MaxJSD()
	}
	b.ReportMetric(maxJSD, "max-jsd-bits")
}

// BenchmarkOwlcCompile measures compiling an OwlC kernel to the device ISA.
func BenchmarkOwlcCompile(b *testing.B) {
	src := `
		kernel subst(pt, key, sbox, ct, n) {
			if (tid < n) {
				var k = key[tid % 8];
				var x = pt[tid] ^ k;
				for (var i = 0; i < 4; i = i + 1) {
					x = sbox[x & 255] ^ (x >> 8);
				}
				ct[tid] = x;
			}
		}
	`
	for i := 0; i < b.N; i++ {
		if _, err := owlc.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesceProfile measures the coalescing transaction model over
// a traced launch.
func BenchmarkCoalesceProfile(b *testing.B) {
	k := gpucrypto.NewAES(gpucrypto.WithBlocks(64)).Kernel()
	_ = k
	addrs := make([]int64, 32)
	for i := range addrs {
		addrs[i] = int64(i * 7)
	}
	var n int
	for i := 0; i < b.N; i++ {
		n = coalesce.Transactions(addrs)
	}
	b.ReportMetric(float64(n), "transactions")
}
