module owl

go 1.22
