package owl_test

// Corrupt-input robustness for the exported trace codecs. These byte
// streams are the cluster wire format and the owltrace archive format, so
// a truncated upload, a version-skewed peer, or plain garbage must come
// back as an error — never a panic, and never a trace that panics later
// in Hash or Encode.

import (
	"bytes"
	"strings"
	"testing"

	"owl"
)

// recordedTrace records one real trace through the public API.
func recordedTrace(t *testing.T) *owl.ProgramTrace {
	t.Helper()
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 2, 2
	det, err := owl.NewDetector(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := det.RecordOnce(newLeakyTable(t), []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDecodeTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := owl.EncodeTrace(&buf, recordedTrace(t)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 7 {
		if _, err := owl.DecodeTrace(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(full))
		}
	}
}

func TestDecodeTraceGarbage(t *testing.T) {
	for _, in := range []string{"", "junk", "\x00\x01\x02\x03", strings.Repeat("\xff", 64)} {
		if _, err := owl.DecodeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("garbage %q accepted", in)
		}
	}
}

func TestDecodeTraceJSONGarbage(t *testing.T) {
	for _, in := range []string{"", "{", "[]", `"str"`, "junk", `{"Program":1}`} {
		if _, err := owl.DecodeTraceJSON(strings.NewReader(in)); err == nil {
			t.Errorf("garbage %q accepted", in)
		}
	}
}

// TestDecodeTraceJSONStructurallyInvalid feeds decodable JSON whose shape
// would panic Hash/Encode: nil invocations and invocations without a
// graph must be rejected by validation, not crash later.
func TestDecodeTraceJSONStructurallyInvalid(t *testing.T) {
	cases := map[string]string{
		"nil invocation": `{"Program":"p","Invocations":[null]}`,
		"nil graph":      `{"Program":"p","Invocations":[{"Kernel":"k"}]}`,
	}
	for name, in := range cases {
		if _, err := owl.DecodeTraceJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// FuzzDecodeTrace: whatever bytes arrive, DecodeTrace either errors or
// returns a trace that survives Hash and a re-encode round-trip.
func FuzzDecodeTrace(f *testing.F) {
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 2, 2
	det, err := owl.NewDetector(opts)
	if err != nil {
		f.Fatal(err)
	}
	b := owl.NewKernelBuilder("lookup", 2)
	table, secret := b.Param(0), b.Param(1)
	b.Load(owl.Global, b.Add(table, b.And(secret, b.ConstR(63))), 0)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	tr, err := det.RecordOnce(&leakyTable{kernel: k}, []byte{5})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := owl.EncodeTrace(&valid, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte("junk"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := owl.DecodeTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		h := got.Hash() // must not panic
		var re bytes.Buffer
		if err := owl.EncodeTrace(&re, got); err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		back, err := owl.DecodeTrace(&re)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if back.Hash() != h {
			t.Fatal("gob round-trip changed the canonical hash")
		}
	})
}

// FuzzDecodeTraceJSON mirrors FuzzDecodeTrace for the interchange format.
func FuzzDecodeTraceJSON(f *testing.F) {
	f.Add([]byte(`{"Program":"p","Invocations":[],"Allocs":null}`))
	f.Add([]byte(`{"Program":"p","Invocations":[null]}`))
	f.Add([]byte(`{"Program":"p","Invocations":[{"Kernel":"k"}]}`))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := owl.DecodeTraceJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = got.Hash() // must not panic on anything the decoder admits
		var re bytes.Buffer
		if err := owl.EncodeTraceJSON(&re, got); err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
	})
}
