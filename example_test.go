package owl_test

import (
	"fmt"
	"math/rand"

	"owl"
)

// exampleProgram looks up a table entry by the secret's first byte.
type exampleProgram struct {
	kernel *owl.Kernel
}

func (p *exampleProgram) Name() string { return "example/lookup" }

func (p *exampleProgram) Run(ctx *owl.Context, input []byte) error {
	table, err := ctx.Malloc(64)
	if err != nil {
		return err
	}
	var secret int64
	if len(input) > 0 {
		secret = int64(input[0])
	}
	return ctx.Launch(p.kernel, owl.D1(1), owl.D1(32), int64(table), secret)
}

// ExampleDetector demonstrates the full pipeline on a one-kernel program
// whose table lookup is indexed by the secret.
func Example() {
	kernel, err := owl.CompileKernel(`
		kernel lookup(table, secret) {
			var v = table[secret & 63];
			table[laneid] = v;
		}
	`)
	if err != nil {
		panic(err)
	}
	opts := owl.DefaultOptions()
	opts.FixedRuns, opts.RandomRuns = 20, 20
	det, err := owl.NewDetector(opts)
	if err != nil {
		panic(err)
	}
	gen := func(r *rand.Rand) []byte { return []byte{byte(r.Intn(64))} }
	report, err := det.Detect(&exampleProgram{kernel: kernel}, [][]byte{{3}, {42}}, gen)
	if err != nil {
		panic(err)
	}
	fmt.Println("potential leak:", report.PotentialLeak)
	fmt.Println("data-flow leaks:", report.ScreenedCount(owl.DataFlowLeak))
	// Output:
	// potential leak: true
	// data-flow leaks: 1
}

// ExampleCompileKernel shows the OwlC compiler.
func ExampleCompileKernel() {
	k, err := owl.CompileKernel(`
		kernel double(in, out, n) {
			if (tid < n) { out[tid] = in[tid] * 2; }
		}
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(k.Name, k.NumParams)
	// Output:
	// double 3
}
